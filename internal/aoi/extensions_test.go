package aoi

import (
	"errors"
	"math"
	"testing"

	"repro/internal/queue"
	"repro/internal/sensors"
)

func TestPeakAoI(t *testing.T) {
	c := idealConfig(t, 100)
	peak, err := c.PeakAoIMs(3)
	if err != nil {
		t.Fatal(err)
	}
	// Staircase 10/15/20: peak is the last step.
	if math.Abs(peak-20) > 0.01 {
		t.Fatalf("peak AoI = %v, want 20", peak)
	}
	avg, err := c.AverageAoIMs(3)
	if err != nil {
		t.Fatal(err)
	}
	if peak <= avg {
		t.Fatal("peak must exceed average for a lagging sensor")
	}
	if _, err := c.PeakAoIMs(0); !errors.Is(err, ErrConfig) {
		t.Fatal("zero updates must error")
	}
}

func TestPeakEqualsAverageForMatchedSensor(t *testing.T) {
	c := idealConfig(t, 200)
	peak, err := c.PeakAoIMs(5)
	if err != nil {
		t.Fatal(err)
	}
	avg, err := c.AverageAoIMs(5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(peak-avg) > 1e-9 {
		t.Fatalf("flat trajectory: peak %v must equal average %v", peak, avg)
	}
}

func TestDropPenalty(t *testing.T) {
	c := idealConfig(t, 100) // 10 ms period
	tests := []struct {
		p, want float64
	}{
		{0, 0},
		{0.5, 10},   // 10·0.5/0.5
		{0.2, 2.5},  // 10·0.2/0.8
		{0.9, 90.0}, // 10·0.9/0.1
	}
	for _, tt := range tests {
		got, err := c.DropPenaltyMs(tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Fatalf("penalty(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := c.DropPenaltyMs(1); !errors.Is(err, ErrConfig) {
		t.Fatal("blocking 1 must error")
	}
	if _, err := c.DropPenaltyMs(-0.1); !errors.Is(err, ErrConfig) {
		t.Fatal("negative blocking must error")
	}
}

func TestAverageAoIWithDrops(t *testing.T) {
	c := idealConfig(t, 100)
	// A tight finite buffer with real blocking.
	buf, err := queue.NewMM1K(0.8, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	withDrops, err := c.AverageAoIWithDropsMs(3, buf)
	if err != nil {
		t.Fatal(err)
	}
	base, err := c.AverageAoIMs(3)
	if err != nil {
		t.Fatal(err)
	}
	if withDrops <= base {
		t.Fatalf("drop-aware AoI %v must exceed base %v", withDrops, base)
	}
	penalty, err := c.DropPenaltyMs(buf.BlockingProbability())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(withDrops-(base+penalty)) > 1e-9 {
		t.Fatal("drop-aware AoI must be base plus penalty")
	}
}

func TestSystemAoI(t *testing.T) {
	fast := idealConfig(t, 500)
	fast.Sensor.Name = "fast"
	slow := idealConfig(t, 50)
	slow.Sensor.Name = "slow"
	sum, err := SystemAoI([]Config{fast, slow}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total != 2 {
		t.Fatalf("total = %d", sum.Total)
	}
	if sum.WorstSensor != "slow" {
		t.Fatalf("worst sensor = %q, want slow", sum.WorstSensor)
	}
	if sum.FreshCount != 1 {
		t.Fatalf("fresh count = %d, want 1 (only the 500 Hz sensor)", sum.FreshCount)
	}
	fastAvg, err := fast.AverageAoIMs(3)
	if err != nil {
		t.Fatal(err)
	}
	slowAvg, err := slow.AverageAoIMs(3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.MeanAoIMs-(fastAvg+slowAvg)/2) > 1e-9 {
		t.Fatal("mean AoI wrong")
	}
	if sum.WorstAoIMs != slowAvg {
		t.Fatal("worst AoI wrong")
	}
	if _, err := SystemAoI(nil, 3); err == nil {
		t.Fatal("empty system must error")
	}
}

func TestSystemAoIPropagatesSensorErrors(t *testing.T) {
	bad := idealConfig(t, 100)
	bad.RequestFrequencyHz = 0
	if _, err := SystemAoI([]Config{bad}, 3); err == nil {
		t.Fatal("invalid member config must error")
	}
}

func TestDropPenaltyUsesSensorPeriod(t *testing.T) {
	s, err := sensors.NewSensor("s", 200, 0) // 5 ms period
	if err != nil {
		t.Fatal(err)
	}
	buf, err := queue.NewMM1(0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	c := Config{Sensor: s, RequestFrequencyHz: 200, Buffer: buf}
	got, err := c.DropPenaltyMs(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-5) > 1e-9 {
		t.Fatalf("penalty = %v, want 5 (one 5 ms period)", got)
	}
}
