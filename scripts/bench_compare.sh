#!/bin/sh
# CI bench ratchet: run the benchmark suite fresh and compare every
# ns/op against the committed baseline (the newest BENCH_<n>.json).
# A benchmark running slower than TOLERANCE x its baseline fails the
# build, so hot-path regressions surface in the PR that caused them
# instead of accumulating silently between baseline rolls.
#
# -benchtime=1x numbers are noisy and CI runners are shared, hence the
# deliberately loose default tolerance of 2.0x; override it with
# BENCH_TOLERANCE (e.g. BENCH_TOLERANCE=3.0 on a very slow runner, or
# 1.2 for a quiet dedicated box).
#
# Usage: bench_compare.sh [baseline.json] [fresh.json]
#   baseline defaults to the newest committed BENCH_<n>.json
#   fresh defaults to a temp file filled by scripts/bench_json.sh
set -eu

cd "$(dirname "$0")/.."

baseline=${1:-$(git ls-files 'BENCH_*.json' | sort -t_ -k2 -n | tail -1)}
if [ -z "$baseline" ] || [ ! -f "$baseline" ]; then
	echo "bench_compare: no committed BENCH_*.json baseline found" >&2
	exit 1
fi

fresh=${2:-}
if [ -z "$fresh" ]; then
	fresh=$(mktemp)
	trap 'rm -f "$fresh"' EXIT
	sh scripts/bench_json.sh "$fresh" >/dev/null
fi

tol=${BENCH_TOLERANCE:-2.0}

awk -v tol="$tol" -v base="$baseline" -v freshfile="$fresh" '
# Both files are written by bench_json.sh: one "BenchmarkName": ns line
# per benchmark, which keeps the parse independent of a JSON tool.
function parse(file, map,   line, name, val) {
	while ((getline line < file) > 0) {
		if (line ~ /"Benchmark[A-Za-z0-9_]*": *[0-9]/) {
			name = line; sub(/^ *"/, "", name); sub(/".*/, "", name)
			val = line; sub(/.*: */, "", val); sub(/,.*/, "", val)
			map[name] = val + 0
		}
	}
	close(file)
}
BEGIN {
	tol += 0
	parse(base, b)
	parse(freshfile, f)
	if (length(b) == 0) {
		printf "bench_compare: no benchmarks parsed from %s\n", base
		exit 1
	}
	bad = 0
	for (name in b) {
		if (!(name in f)) {
			printf "FAIL %-34s in %s but missing from the fresh run\n", name, base
			bad = 1
			continue
		}
		ratio = f[name] / b[name]
		status = (ratio > tol) ? "FAIL" : "ok"
		printf "%-4s %-34s %12d -> %12d ns/op  (%.2fx of baseline, limit %.2fx)\n", \
			status, name, b[name], f[name], ratio, tol
		if (ratio > tol) bad = 1
	}
	for (name in f)
		if (!(name in b))
			printf "new  %-34s %25d ns/op  (no baseline; not gated)\n", name, f[name]
	if (bad) {
		printf "bench_compare: benchmark regression beyond %.2fx of %s\n", tol, base
		exit 1
	}
	printf "bench_compare: all benchmarks within %.2fx of %s\n", tol, base
}'
