#!/bin/sh
# Benchmark trajectory tracking, run by `make bench-json` and the CI
# bench job: execute the full benchmark suite once (-benchtime=1x, the
# same smoke configuration the bench job gates on) and distill it into a
# machine-readable JSON file mapping every benchmark to its ns/op.
# CI uploads the file as an artifact per run, so successive PRs leave a
# perf trail that can be diffed instead of re-measured from memory.
#
# Usage: bench_json.sh [output.json]
# The default output is the newest committed BENCH_<n>.json, so rolling
# the baseline forward never requires editing this script again.
set -eu

cd "$(dirname "$0")/.."
default_out=$(git ls-files 'BENCH_*.json' | sort -t_ -k2 -n | tail -1)
out=${1:-${default_out:-BENCH.json}}
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -bench=. -benchtime=1x -run='^$' ./... >"$tmp"

# Bench lines look like:
#   BenchmarkSweepNet-4   1   8215164 ns/op   8.381 energyErr% ...
# Keep the name (GOMAXPROCS suffix stripped, so the trajectory is
# comparable across runner shapes) and the ns/op value.
awk -v goversion="$(go version | awk '{print $3}')" '
$1 ~ /^Benchmark/ && $4 == "ns/op" {
    name = $1
    sub(/-[0-9]+$/, "", name)
    n++
    names[n] = name
    ns[n] = $3
}
END {
    if (n == 0) {
        print "bench_json: no benchmark results parsed" > "/dev/stderr"
        exit 1
    }
    printf "{\n"
    printf "  \"schema\": 1,\n"
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"benchtime\": \"1x\",\n"
    printf "  \"unit\": \"ns/op\",\n"
    printf "  \"benchmarks\": {\n"
    for (i = 1; i <= n; i++)
        printf "    \"%s\": %s%s\n", names[i], ns[i], (i < n ? "," : "")
    printf "  }\n"
    printf "}\n"
}' "$tmp" >"$out"

echo "bench_json: wrote $(grep -c '^    "Benchmark' "$out") benchmarks to $out"
