#!/bin/sh
# Documentation gate, run by `make docs` and the CI docs job:
#   1. every relative Markdown link in README/ROADMAP/docs/ resolves;
#   2. every internal package and command carries a godoc package comment.
set -eu

cd "$(dirname "$0")/.."
fail=0

# --- 1. Markdown link check ------------------------------------------------
# Extract ](target) links, keep only repo-relative ones (skip http(s),
# mailto, and pure #anchors), strip anchors, and require the target file
# or directory to exist relative to the linking file.
for md in README.md ROADMAP.md CHANGES.md docs/*.md; do
    [ -f "$md" ] || continue
    dir=$(dirname "$md")
    links=$(grep -o '](\([^)]*\))' "$md" | sed 's/^](//; s/)$//') || true
    for link in $links; do
        case "$link" in
        # ../../... climbs above the repo root: a GitHub-web-relative URL
        # (e.g. the CI badge), not a repository file.
        http://*|https://*|mailto:*|\#*|../../*) continue ;;
        esac
        target=${link%%#*}
        [ -n "$target" ] || continue
        if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
            echo "$md: broken link: $link"
            fail=1
        fi
    done
done

# --- 2. godoc package-comment presence -------------------------------------
# Every internal package needs a "// Package <name> ..." comment and every
# command a "// Command <name> ..." (or Package) comment, in some .go file.
for d in internal/*/; do
    if ! grep -q "^// Package " "$d"*.go 2>/dev/null; then
        echo "$d: missing godoc package comment (// Package ...)"
        fail=1
    fi
done
for d in cmd/*/; do
    if ! grep -qE "^// (Command|Package) " "$d"*.go 2>/dev/null; then
        echo "$d: missing godoc command comment (// Command ...)"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "docs check FAILED"
    exit 1
fi
echo "docs check OK"
