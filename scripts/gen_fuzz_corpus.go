//go:build ignore

// gen_fuzz_corpus regenerates the committed seed corpora under
// internal/testbed/testdata/fuzz/. The seeds mirror the f.Add calls in
// fuzz_test.go but live on disk in `go test fuzz v1` format, so `go
// test` exercises them on every run and a future wire-format change
// regenerates them with one command:
//
//	go run scripts/gen_fuzz_corpus.go
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/testbed"
)

func frame(v any) []byte {
	var buf bytes.Buffer
	if err := testbed.WriteFrame(&buf, v); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes()
}

func binFrame(v any) []byte {
	var buf bytes.Buffer
	if err := testbed.WriteFrameCodec(&buf, testbed.CodecBinary, v); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes()
}

func writeSeed(dir, name string, data []byte) {
	body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", path)
}

func main() {
	root := filepath.Join("internal", "testbed", "testdata", "fuzz")
	batch := testbed.WireBatch{ID: 3, Reqs: []testbed.Request{
		{Trials: 2, Seed: 9},
		{Op: testbed.OpAnalyze, Fit: &testbed.FitConfig{Seed: 3, TrainRows: 10, TestRows: 4}},
	}}
	result := testbed.WireBatchResult{ID: 3, Items: []testbed.WireItem{{Err: "trial count"}}}

	seeds := map[string]map[string][]byte{
		"FuzzReadFrame": {
			"hello":          frame(testbed.Hello()),
			"batch":          frame(batch),
			"batch-result":   frame(result),
			"hostile-length": {0, 0, 127, 255, 'x', 'x', 'x', 'x', 'x', 'x'},
		},
		"FuzzBinaryFrame": {
			"batch":         binFrame(batch),
			"batch-result":  binFrame(result),
			"start":         binFrame(testbed.WireStart{Codec: testbed.CodecBinary}),
			"hostile-count": {0, 0, 0, 6, 1, 1, 0xff, 0xff, 0xff, 0x7f},
		},
		"FuzzWireHello": {
			"hello":      frame(testbed.Hello()),
			"jobs-hello": frame(testbed.JobsHello()),
			"json-only":  frame(testbed.JSONHello()),
			"future":     frame(testbed.WireHello{Protocol: 99, Physics: 1}),
		},
	}
	for target, files := range seeds {
		dir := filepath.Join(root, target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
		for name, data := range files {
			writeSeed(dir, name, data)
		}
	}
}
