// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (Section VIII). Each benchmark drives the
// corresponding experiment runner and reports the figure's headline
// metric — mean model error for the Fig. 4 panels, normalized-accuracy
// gaps for the Fig. 5 comparison — via b.ReportMetric, so
// `go test -bench=. -benchmem` reproduces the paper's result set in one
// command.
package repro

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/pipeline"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/testbed"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
	suiteErr  error
)

// benchSuite shares one fitted suite across benchmarks: dataset generation
// and regression fitting is the expensive setup, not the per-figure
// evaluation. The suite is pinned to an uncached in-process backend so
// every iteration measures real work — the default memoizing cache would
// make iterations 2..N free and turn the timings into cache-lookup
// benchmarks (BenchmarkSweepCached measures that case explicitly).
func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = experiments.NewSuite(42, 12000, 3000)
		if suite != nil {
			suite.Trials = 15
			suite.Runner = &sweep.PoolRunner{}
		}
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

func BenchmarkTable1Devices(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Table1(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Devices) != 8 {
			b.Fatal("catalog incomplete")
		}
	}
}

func BenchmarkTable2CNNs(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Table2(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Models) != 11 {
			b.Fatal("catalog incomplete")
		}
	}
}

func BenchmarkRegressionFits(b *testing.B) {
	s := benchSuite(b)
	var last *experiments.FitSummaryResult
	for i := 0; i < b.N; i++ {
		res, err := s.FitSummary(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.Report.Resource.TrainR2, "resourceR2")
		b.ReportMetric(last.Report.Power.TrainR2, "powerR2")
		b.ReportMetric(last.Report.Encoder.TrainR2, "encoderR2")
		b.ReportMetric(last.Report.Complexity.TrainR2, "cnnR2")
	}
}

// benchSweep shares the Fig. 4(a)-(d) benchmark shape.
func benchSweep(b *testing.B, run func(context.Context) (*experiments.SweepResult, error)) {
	benchSuite(b)
	var last *experiments.SweepResult
	for i := 0; i < b.N; i++ {
		res, err := run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.MeanErrPct, "meanErr%")
		b.ReportMetric(last.PaperMeanErrPct, "paperErr%")
	}
}

func BenchmarkFig4aLatencyLocal(b *testing.B) {
	s := benchSuite(b)
	benchSweep(b, s.Fig4a)
}

func BenchmarkFig4bLatencyRemote(b *testing.B) {
	s := benchSuite(b)
	benchSweep(b, s.Fig4b)
}

func BenchmarkFig4cEnergyLocal(b *testing.B) {
	s := benchSuite(b)
	benchSweep(b, s.Fig4c)
}

func BenchmarkFig4dEnergyRemote(b *testing.B) {
	s := benchSuite(b)
	benchSweep(b, s.Fig4d)
}

func BenchmarkFig4eAoI(b *testing.B) {
	s := benchSuite(b)
	var last *experiments.Fig4eResult
	for i := 0; i < b.N; i++ {
		res, err := s.Fig4e(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		var worst float64
		for _, srs := range last.Series {
			if srs.MeanErrMs > worst {
				worst = srs.MeanErrMs
			}
		}
		b.ReportMetric(worst, "worstGap(ms)")
	}
}

func BenchmarkFig4fRoI(b *testing.B) {
	s := benchSuite(b)
	var last *experiments.Fig4fResult
	for i := 0; i < b.N; i++ {
		res, err := s.Fig4f(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil && len(last.Points) > 0 {
		b.ReportMetric(last.Points[0].RoI, "firstRoI")
	}
}

// benchFig5 shares the Fig. 5 benchmark shape.
func benchFig5(b *testing.B, run func(context.Context) (*experiments.Fig5Result, error)) {
	benchSuite(b)
	var last *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		res, err := run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.MeanProposed, "proposed%")
		b.ReportMetric(last.MeanFACT, "fact%")
		b.ReportMetric(last.MeanLEAF, "leaf%")
		b.ReportMetric(last.GapFACT, "gapFACTpp")
		b.ReportMetric(last.GapLEAF, "gapLEAFpp")
	}
}

func BenchmarkFig5aAccuracyLatency(b *testing.B) {
	s := benchSuite(b)
	benchFig5(b, s.Fig5a)
}

func BenchmarkFig5bAccuracyEnergy(b *testing.B) {
	s := benchSuite(b)
	benchFig5(b, s.Fig5b)
}

// sweepBenchGrid is the 64-point device × mode × resolution × clock grid
// shared by the serial-vs-parallel engine benchmarks.
func sweepBenchGrid(b *testing.B) sweep.Grid {
	b.Helper()
	names := []string{"XR1", "XR2", "XR6", "XR7"}
	devs := make([]device.Device, len(names))
	for i, n := range names {
		d, err := device.ByName(n)
		if err != nil {
			b.Fatal(err)
		}
		devs[i] = d
	}
	g := sweep.Grid{
		Devices:    devs,
		Modes:      []pipeline.InferenceMode{pipeline.ModeLocal, pipeline.ModeRemote},
		FrameSizes: []float64{300, 400, 500, 600},
		CPUFreqs:   []float64{1, 0}, // 0 = device max
	}
	if g.Size() != 64 {
		b.Fatalf("bench grid size = %d, want 64", g.Size())
	}
	return g
}

// benchSweepGrid runs the 64-point grid on the given backend; the
// serial/parallel/proc set pins each backend's cost on identical work
// (results are byte-identical across all of them, only wall-clock
// differs).
func benchSweepGrid(b *testing.B, runner sweep.Runner) {
	s := benchSuite(b)
	grid := sweepBenchGrid(b)
	prev := s.Runner
	s.Runner = runner
	defer func() { s.Runner = prev }()
	b.ResetTimer()
	var last *experiments.GridResult
	for i := 0; i < b.N; i++ {
		res, err := s.RunGrid(context.Background(), grid)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(float64(len(last.Points)), "points")
		b.ReportMetric(last.MeanLatencyErrPct, "latErr%")
		b.ReportMetric(last.MeanEnergyErrPct, "energyErr%")
	}
}

// BenchmarkSweepSerial runs the grid on a single worker — the baseline
// the pre-engine inline loops were equivalent to.
func BenchmarkSweepSerial(b *testing.B) { benchSweepGrid(b, &sweep.PoolRunner{Workers: 1}) }

// BenchmarkSweepParallel runs the same grid across GOMAXPROCS workers;
// with ≥4 cores this completes the grid ≥2× faster than the serial run.
func BenchmarkSweepParallel(b *testing.B) { benchSweepGrid(b, &sweep.PoolRunner{}) }

// warmSweepRunner runs the grid once before the timer starts so the
// session-pool backends measure steady-state dispatch cost. Worker
// spawn (proc) and dial+handshake (net) are one-time costs that a real
// multi-sweep run amortizes across sweeps; at -benchtime=1x they would
// otherwise dominate the single timed iteration and hide the per-frame
// wire cost these benchmarks exist to pin.
func warmSweepRunner(b *testing.B, runner sweep.Runner) {
	b.Helper()
	s := benchSuite(b)
	prev := s.Runner
	s.Runner = runner
	defer func() { s.Runner = prev }()
	if _, err := s.RunGrid(context.Background(), sweepBenchGrid(b)); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSweepProc runs the same grid across GOMAXPROCS worker
// subprocesses, pinning the proc backend's dispatch and serialization
// overhead against the in-process pool on identical work. The worker
// pool is warmed before timing starts, so the number tracks per-sweep
// wire cost rather than the one-time spawn.
func BenchmarkSweepProc(b *testing.B) {
	pr := &sweep.ProcRunner{}
	defer pr.Close()
	warmSweepRunner(b, pr)
	benchSweepGrid(b, pr)
}

// BenchmarkSweepCached runs the grid through the memoizing measurement
// cache: iteration 1 measures the 64 cells, iterations 2..N are pure
// cache replays — the repeated-cell cost the default backend eliminates
// across Fig. 4/Fig. 5/ablation.
func BenchmarkSweepCached(b *testing.B) {
	benchSweepGrid(b, sweep.NewCachedRunner(&sweep.PoolRunner{}))
}

// benchServeNode starts one loopback serve node torn down with the
// benchmark, returning its dialable address.
func benchServeNode(b *testing.B) string {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = testbed.ServeListener(ctx, ln, nil)
	}()
	b.Cleanup(func() {
		cancel()
		<-done
	})
	return ln.Addr().String()
}

// BenchmarkSweepNet runs the same grid through a loopback serve node,
// pinning the network backend's dispatch, framing, and TCP round-trip
// overhead against the pool and proc backends on identical work. The
// connections are warmed before timing starts, so the number tracks
// per-sweep wire cost rather than the one-time dial+handshake.
func BenchmarkSweepNet(b *testing.B) {
	nr := &sweep.NetRunner{Nodes: []string{benchServeNode(b)}}
	defer nr.Close()
	warmSweepRunner(b, nr)
	benchSweepGrid(b, nr)
}

// BenchmarkSweepNetSkewed runs the grid on a three-node fleet where one
// node answers through a frame-delaying proxy roughly 10× slower than
// its peers — the elastic-fleet headline case. With stealing on (the
// default) the idle fast nodes repark the slow node's queued batches,
// so the sweep finishes near the fast nodes' pace; the NoSteal variant
// below pins what the same skew costs under plain weighted dealing.
// The steal count is reported as a metric so the perf trail shows the
// mechanism actually fired rather than the fleet just dodging the slow
// node.
func BenchmarkSweepNetSkewed(b *testing.B) { benchSweepNetSkewed(b, false) }

// BenchmarkSweepNetSkewedNoSteal is the control: identical fleet and
// skew, stealing disabled. The gap between this and SweepNetSkewed is
// the benefit of work stealing on an asymmetric fleet.
func BenchmarkSweepNetSkewedNoSteal(b *testing.B) { benchSweepNetSkewed(b, true) }

func benchSweepNetSkewed(b *testing.B, noSteal bool) {
	slow, err := sweep.NewChaosProxy(benchServeNode(b), sweep.ChaosConfig{FrameDelay: 25 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	defer slow.Close()
	nr := &sweep.NetRunner{
		Nodes:      []string{slow.Addr(), benchServeNode(b), benchServeNode(b)},
		Batch:      2,
		StealAfter: time.Millisecond,
		NoSteal:    noSteal,
	}
	defer nr.Close()
	benchSweepGrid(b, nr)
	b.ReportMetric(float64(nr.Steals()), "steals")
}

// BenchmarkAblationPaperVsFitted quantifies the DESIGN.md "re-fit, don't
// replay" decision: the paper's published coefficients (trained on the
// authors' physical testbed) against coefficients re-fitted on this
// repository's synthetic testbed, both evaluated against the synthetic
// ground truth on the Fig. 4(a) sweep.
func BenchmarkAblationPaperVsFitted(b *testing.B) {
	s := benchSuite(b)
	var last *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		res, err := s.Ablation(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.PaperErrPct, "paperCoefErr%")
		b.ReportMetric(last.FittedErrPct, "refittedErr%")
	}
}

// BenchmarkAblationMultiEdgeSplit quantifies the Eq. (15) design choice:
// remote-inference latency for one edge server versus an even two-way
// split on identical hardware.
func BenchmarkAblationMultiEdgeSplit(b *testing.B) {
	s := benchSuite(b)
	dev, err := device.ByName(experiments.SweepDevice)
	if err != nil {
		b.Fatal(err)
	}
	base, err := pipeline.NewScenario(dev, pipeline.WithMode(pipeline.ModeRemote))
	if err != nil {
		b.Fatal(err)
	}
	edge := base.Edges[0]

	var single, split float64
	for i := 0; i < b.N; i++ {
		one, err := pipeline.NewScenario(dev, pipeline.WithMode(pipeline.ModeRemote))
		if err != nil {
			b.Fatal(err)
		}
		lb1, err := s.Latency.FrameLatency(one)
		if err != nil {
			b.Fatal(err)
		}
		two, err := pipeline.NewScenario(dev,
			pipeline.WithMode(pipeline.ModeRemote),
			pipeline.WithEdges(
				pipeline.EdgeAssignment{Share: 0.5, Resource: edge.Resource, MemBandwidthGBs: edge.MemBandwidthGBs},
				pipeline.EdgeAssignment{Share: 0.5, Resource: edge.Resource, MemBandwidthGBs: edge.MemBandwidthGBs},
			),
		)
		if err != nil {
			b.Fatal(err)
		}
		lb2, err := s.Latency.FrameLatency(two)
		if err != nil {
			b.Fatal(err)
		}
		single, split = lb1.RemoteInf, lb2.RemoteInf
	}
	b.ReportMetric(single, "singleEdge(ms)")
	b.ReportMetric(split, "twoWaySplit(ms)")
}

// BenchmarkPopulationSweep measures the population-simulation path end to
// end: a named scenario expanded into cohorts, sharded into session
// requests, executed on the parallel pool, and folded into quantile
// sketches. users/sec is the capacity-planning number — it is what
// determines how long `xrperf population -users 1000000` takes.
func BenchmarkPopulationSweep(b *testing.B) {
	const users, frames = 2000, 30
	cohorts, err := scenario.Generate("offload", scenario.Params{Users: users, Frames: frames, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	r := &sweep.PoolRunner{}
	b.ResetTimer()
	var last *sweep.PopulationResult
	for i := 0; i < b.N; i++ {
		res, err := sweep.RunPopulation(context.Background(), r, cohorts,
			sweep.PopulationOptions{ShardUsers: 250})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	if last != nil {
		b.ReportMetric(float64(users)*float64(b.N)/b.Elapsed().Seconds(), "users/s")
		b.ReportMetric(float64(users*frames)*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
	}
}
