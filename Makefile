# CI and humans invoke the same targets (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test race bench lint fmt docs ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -w .

docs:
	sh scripts/check_docs.sh

ci: build lint race bench docs
