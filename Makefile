# CI and humans invoke the same targets (.github/workflows/ci.yml).

GO ?= go

# Pinned staticcheck release; CI installs exactly this version, so a
# local `go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)`
# reproduces the gate bit for bit.
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: all build test race bench bench-json bench-compare lint fmt docs ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -shuffle=on randomizes test order so inter-test state dependencies
# surface; the seed is printed on failure for replay with -shuffle=<seed>.
race:
	$(GO) test -race -shuffle=on ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Benchmark trajectory: one 1x pass distilled into the newest committed
# BENCH_<n>.json (ns/op per benchmark); CI archives it per run.
bench-json:
	sh scripts/bench_json.sh

# Bench ratchet: fresh 1x pass diffed against the committed baseline;
# fails on any benchmark slower than BENCH_TOLERANCE (default 2.0x).
bench-compare:
	sh scripts/bench_compare.sh

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/xrlint ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; skipping (CI pins $(STATICCHECK_VERSION))"; fi
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -w .

docs:
	sh scripts/check_docs.sh

ci: build lint race bench docs
