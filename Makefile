# CI and humans invoke the same targets (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test race bench bench-json lint fmt docs ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Benchmark trajectory: one 1x pass distilled into BENCH_7.json
# (ns/op per benchmark); CI archives it per run.
bench-json:
	sh scripts/bench_json.sh BENCH_7.json

lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; skipping (CI runs it)"; fi
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -w .

docs:
	sh scripts/check_docs.sh

ci: build lint race bench docs
