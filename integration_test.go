// Cross-module integration tests: the full stack — synthetic testbed →
// regression fitting → analytical framework → session simulation → trace
// export — exercised end to end, plus consistency checks between the
// analytical models and their discrete-event validators.
package repro

import (
	"bytes"
	"context"
	"math"
	"net"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aoi"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/pipeline"
	"repro/internal/queue"
	"repro/internal/scenario"
	"repro/internal/sensors"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/testbed"
	"repro/internal/wireless"
)

// TestMain lets the proc sweep backend re-execute this test binary as a
// measurement worker: with the worker marker set, the process serves the
// wire protocol instead of running the tests.
func TestMain(m *testing.M) {
	testbed.MaybeServeWorker()
	os.Exit(m.Run())
}

// startServeNodes runs n loopback worker-fleet nodes (the in-process
// equivalent of `xrperf serve`) for the test's lifetime and returns
// their addresses.
func startServeNodes(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = testbed.ServeListener(ctx, ln, nil)
		}()
		t.Cleanup(func() {
			cancel()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Error("serve node did not shut down")
			}
		})
		addrs[i] = ln.Addr().String()
	}
	return addrs
}

// TestFullStackFitAnalyzeSession drives the complete workflow a
// downstream user would run: fit models on the synthetic testbed, analyze
// a realistic scenario, run a session with thermal/battery loops, and
// round-trip the trace through CSV.
func TestFullStackFitAnalyzeSession(t *testing.T) {
	fw, report, err := core.NewFitted(11, 6000, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if report.Resource.TrainR2 < 0.7 || report.Encoder.TrainR2 < 0.7 {
		t.Fatalf("weak fits: %+v", report)
	}

	dev, err := device.ByName("XR2") // held-out device
	if err != nil {
		t.Fatal(err)
	}
	s1, err := sensors.NewSensor("imu-hub", 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := pipeline.NewScenario(dev,
		pipeline.WithMode(pipeline.ModeRemote),
		pipeline.WithFrameSize(600),
		pipeline.WithSensors(sensors.NewArray(s1), 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fw.Analyze(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Latency.Total <= 0 || rep.Energy.Total <= 0 || len(rep.Sensors) != 1 {
		t.Fatalf("report incomplete: %+v", rep)
	}

	battery, err := session.NewBattery(3640, 3.85) // Quest 2-class pack
	if err != nil {
		t.Fatal(err)
	}
	thermal := session.DefaultThermal()
	res, err := session.Run(context.Background(), session.Config{
		Models:   fw.Energy,
		Scenario: sc,
		Frames:   120,
		Thermal:  &thermal,
		Battery:  &battery,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedFrames != 120 {
		t.Fatalf("frames = %d", res.CompletedFrames)
	}

	tbl, err := res.TraceTable()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := dataset.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 120 {
		t.Fatalf("csv round-trip rows = %d", back.Len())
	}
}

// TestSweepEngineDeterministicAcrossWorkerCounts pins the sweep engine's
// end-to-end determinism contract on the real evaluation stack: the
// Fig. 4 panels, the ablation, and an arbitrary user grid must render
// byte-identical output whether they run on one worker or many.
func TestSweepEngineDeterministicAcrossWorkerCounts(t *testing.T) {
	build := func(workers int) *experiments.Suite {
		t.Helper()
		s, err := experiments.NewSuite(42, 4000, 1000)
		if err != nil {
			t.Fatal(err)
		}
		s.Trials = 5
		s.Workers = workers
		return s
	}
	serial := build(1)
	parallel := build(8)

	for _, id := range []string{"fig4a", "fig4d", "fig4e", "fig5a", "fig5b", "table2", "ablation"} {
		rs, err := serial.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := parallel.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		if rs.Render() != rp.Render() {
			t.Fatalf("%s differs between 1 and 8 workers:\n--- serial\n%s\n--- parallel\n%s",
				id, rs.Render(), rp.Render())
		}
	}

	dev, err := device.ByName("XR1")
	if err != nil {
		t.Fatal(err)
	}
	grid := sweep.Grid{
		Devices:    []device.Device{dev},
		Modes:      []pipeline.InferenceMode{pipeline.ModeLocal, pipeline.ModeRemote},
		FrameSizes: []float64{300, 500, 700},
		CPUFreqs:   []float64{1, 3},
	}
	gs, err := serial.RunGrid(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := parallel.RunGrid(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	if gs.Render() != gp.Render() {
		t.Fatalf("grid sweep differs between worker counts:\n--- serial\n%s\n--- parallel\n%s",
			gs.Render(), gp.Render())
	}
}

// TestFullReportDeterministicAcrossWorkerCounts pins the tentpole
// acceptance criterion end to end: the complete report — every table,
// figure, and the verdict, with experiments themselves fanned out
// concurrently — must be byte-identical at 1 and 8 workers, in both the
// buffered and streaming modes.
func TestFullReportDeterministicAcrossWorkerCounts(t *testing.T) {
	report := func(workers int, stream bool) string {
		t.Helper()
		s, err := experiments.NewSuite(42, 4000, 1000)
		if err != nil {
			t.Fatal(err)
		}
		s.Trials = 5
		s.Workers = workers
		var buf bytes.Buffer
		if stream {
			err = s.StreamReport(context.Background(), &buf)
		} else {
			err = s.WriteReport(&buf)
		}
		if err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	serial := report(1, false)
	parallel := report(8, false)
	if serial != parallel {
		t.Fatalf("report differs between 1 and 8 workers:\n--- serial\n%s\n--- parallel\n%s",
			serial, parallel)
	}
	if streamed := report(8, true); streamed != serial {
		t.Fatalf("streamed report diverges from buffered report:\n--- buffered\n%s\n--- streamed\n%s",
			serial, streamed)
	}
}

// TestAnalyzeBatchMatchesAnalyze checks the core façade's batch API
// against the sequential one on a mixed scenario list, across every
// backend: the in-process default (nil runner), an explicit pool runner,
// and worker subprocesses — each must reproduce sequential Analyze
// exactly.
func TestAnalyzeBatchMatchesAnalyze(t *testing.T) {
	fw := core.NewWithPaperCoefficients()
	var scs []*pipeline.Scenario
	for _, name := range []string{"XR1", "XR4", "XR6"} {
		dev, err := device.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []pipeline.InferenceMode{pipeline.ModeLocal, pipeline.ModeRemote} {
			sc, err := pipeline.NewScenario(dev, pipeline.WithMode(mode))
			if err != nil {
				t.Fatal(err)
			}
			scs = append(scs, sc)
		}
	}
	proc := &sweep.ProcRunner{Procs: 2}
	defer proc.Close()
	netr := &sweep.NetRunner{Nodes: startServeNodes(t, 2)}
	defer netr.Close()
	backends := []struct {
		name   string
		runner sweep.Runner
	}{
		{"nil (in-process)", nil},
		{"pool", &sweep.PoolRunner{Workers: 4}},
		{"proc", proc},
		{"net", netr},
	}
	for _, b := range backends {
		batch, err := fw.AnalyzeBatch(context.Background(), scs, b.runner)
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		if len(batch) != len(scs) {
			t.Fatalf("%s: batch reports = %d, want %d", b.name, len(batch), len(scs))
		}
		for i, sc := range scs {
			want, err := fw.Analyze(sc)
			if err != nil {
				t.Fatal(err)
			}
			if batch[i].Latency.Total != want.Latency.Total ||
				batch[i].Energy.Total != want.Energy.Total {
				t.Fatalf("%s: batch[%d] diverges from sequential Analyze", b.name, i)
			}
		}
	}

	// A hand-assembled framework has no wire provenance: batch analysis
	// must work in-process and reject dispatching backends.
	hand := &core.Framework{Latency: fw.Latency, Energy: fw.Energy}
	if _, err := hand.AnalyzeBatch(context.Background(), scs, nil); err != nil {
		t.Fatalf("hand-assembled in-process batch: %v", err)
	}
	if _, err := hand.AnalyzeBatch(context.Background(), scs, &sweep.PoolRunner{}); err == nil {
		t.Fatal("hand-assembled framework must reject a dispatching backend")
	}
}

// TestReportByteIdenticalAcrossBackends pins the backend-equivalence
// matrix end to end: the full report must be byte-identical across the
// pool, proc, and net backends at any parallelism and node count, and
// the measurement cache must collapse every repeated grid cell into a
// single backend measurement on each of them.
func TestReportByteIdenticalAcrossBackends(t *testing.T) {
	report := func(runner sweep.Runner, workers int) (string, *experiments.Suite) {
		t.Helper()
		s, err := experiments.NewSuite(42, 4000, 1000)
		if err != nil {
			t.Fatal(err)
		}
		s.Trials = 5
		s.Workers = workers
		s.Runner = runner
		var buf bytes.Buffer
		if err := s.WriteReport(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String(), s
	}

	want, poolSuite := report(nil, 1)

	// The cache sees each repeated cell exactly once: the Fig. 4 panels,
	// the Fig. 5 evaluation grids, and the ablation share 30 scenario
	// cells (15 local + 15 remote); the two Fig. 5 calibration campaigns
	// share 9 more, of which the three 2 GHz cells coincide with the
	// evaluation grid — 36 unique cells for 123 measurement requests.
	st, ok := poolSuite.CacheStats()
	if !ok {
		t.Fatal("default suite must run on the cached backend")
	}
	if st.Misses != 36 || st.Hits != 123-36 {
		t.Fatalf("cache counters: measured %d cells with %d hits, want 36 measured / 87 hits", st.Misses, st.Hits)
	}

	if got, _ := report(nil, 8); got != want {
		t.Fatal("pool report differs between 1 and 8 workers")
	}
	for _, procs := range []int{1, 4} {
		pr := &sweep.ProcRunner{Procs: procs}
		got, procSuite := report(sweep.NewCachedRunner(pr), 8)
		_ = pr.Close()
		if got != want {
			t.Fatalf("proc report (procs=%d) differs from pool report", procs)
		}
		if pst, ok := procSuite.CacheStats(); !ok || pst.Misses != 36 {
			t.Fatalf("proc cache measured %d cells, want 36", pst.Misses)
		}
	}

	// The same report through a fleet of loopback serve nodes — single
	// node and multi-node, so both the degenerate and the sharded
	// dispatch paths are pinned.
	for _, nodes := range []int{1, 3} {
		nr := &sweep.NetRunner{Nodes: startServeNodes(t, nodes)}
		got, netSuite := report(sweep.NewCachedRunner(nr), 8)
		_ = nr.Close()
		if got != want {
			t.Fatalf("net report (%d nodes) differs from pool report", nodes)
		}
		if nst, ok := netSuite.CacheStats(); !ok || nst.Misses != 36 {
			t.Fatalf("net cache measured %d cells, want 36", nst.Misses)
		}
	}
}

// TestReportByteIdenticalNetWithNodeDeath pins the recovery half of the
// tentpole: a fleet whose node dies mid-run still produces the
// byte-identical report — shards are re-dispatched to surviving nodes,
// and re-dispatch cannot change a byte because measurements are pure
// functions of their requests.
func TestReportByteIdenticalNetWithNodeDeath(t *testing.T) {
	newSuite := func(runner sweep.Runner) *experiments.Suite {
		t.Helper()
		s, err := experiments.NewSuite(42, 4000, 1000)
		if err != nil {
			t.Fatal(err)
		}
		s.Trials = 5
		s.Workers = 8
		s.Runner = runner
		return s
	}
	var want bytes.Buffer
	if err := newSuite(nil).WriteReport(&want); err != nil {
		t.Fatal(err)
	}

	// One healthy node plus one that accepts the handshake, swallows its
	// first request, and drops the connection — a node dying mid-frame.
	healthy := startServeNodes(t, 1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var dropped atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				if err := testbed.WriteFrame(conn, testbed.Hello()); err != nil {
					return
				}
				var start testbed.WireStart
				if err := testbed.ReadFrame(conn, &start); err != nil {
					return
				}
				var b testbed.WireBatch
				if err := testbed.ReadFrameCodec(conn, start.Codec, &b); err == nil {
					dropped.Add(1)
				}
			}(conn)
		}
	}()

	nr := &sweep.NetRunner{Nodes: []string{ln.Addr().String(), healthy[0]}, ConnsPerNode: 2}
	defer nr.Close()
	var got bytes.Buffer
	if err := newSuite(sweep.NewCachedRunner(nr)).WriteReport(&got); err != nil {
		t.Fatalf("report with a dying node: %v", err)
	}
	if got.String() != want.String() {
		t.Fatal("report with a dying node diverges from the pool report")
	}
	if dropped.Load() == 0 {
		t.Fatal("dying node never saw a request; the test proved nothing")
	}
}

// TestNetBackendHandshakeMismatchSurfaces pins the version gate at the
// suite level: a fleet of nodes built from a different physics version
// must fail the run with a clear version-mismatch error, not return
// different numbers.
func TestNetBackendHandshakeMismatchSurfaces(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			_ = testbed.WriteFrame(conn, testbed.WireHello{
				Protocol: testbed.ProtocolVersion,
				Physics:  testbed.PhysicsVersion + 1,
			})
			conn.Close()
		}
	}()

	s, err := experiments.NewSuite(42, 2000, 500)
	if err != nil {
		t.Fatal(err)
	}
	s.Trials = 5
	nr := &sweep.NetRunner{Nodes: []string{ln.Addr().String()}}
	defer nr.Close()
	s.Runner = sweep.NewCachedRunner(nr)
	_, err = s.Fig4a(context.Background())
	if err == nil || !strings.Contains(err.Error(), "physics") {
		t.Fatalf("mismatched fleet error = %v, want a version-mismatch explanation", err)
	}
}

// countingRunner wraps a backend and counts every request dispatched to
// it, so a test can assert a warm cache dispatches exactly zero.
type countingRunner struct {
	inner      sweep.Runner
	dispatched atomic.Int64
}

func (c *countingRunner) Run(ctx context.Context, reqs []testbed.Request) ([]testbed.Measurement, error) {
	c.dispatched.Add(int64(len(reqs)))
	return c.inner.Run(ctx, reqs)
}

func (c *countingRunner) Stream(ctx context.Context, reqs []testbed.Request, emit func(int, testbed.Measurement) error) error {
	c.dispatched.Add(int64(len(reqs)))
	return c.inner.Stream(ctx, reqs, emit)
}

// TestWarmDiskCacheReportByteIdentical pins this PR's tentpole
// acceptance criterion end to end: with a persistent cache directory, a
// second (warm) full-report run — a fresh suite and a fresh store
// handle, as a new process would hold — must be byte-identical to the
// cold run and dispatch zero measurements to the backend, with
// consistent counters.
func TestWarmDiskCacheReportByteIdentical(t *testing.T) {
	dir := t.TempDir()
	newSuite := func() *experiments.Suite {
		t.Helper()
		s, err := experiments.NewSuite(42, 4000, 1000)
		if err != nil {
			t.Fatal(err)
		}
		s.Trials = 5
		s.Workers = 4
		return s
	}

	coldDisk, err := sweep.OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := newSuite()
	cold.Disk = coldDisk
	var coldBuf bytes.Buffer
	if err := cold.WriteReport(&coldBuf); err != nil {
		t.Fatal(err)
	}
	if st, ok := cold.CacheStats(); !ok || st.Misses != 36 || st.DiskHits != 0 {
		t.Fatalf("cold run counters: %+v, want 36 measured / 0 from disk", st)
	}
	if st := coldDisk.Stats(); st.Stores != 36 {
		t.Fatalf("cold run persisted %d cells, want 36", st.Stores)
	}

	warmDisk, err := sweep.OpenDiskCache(dir) // fresh handle: a new process
	if err != nil {
		t.Fatal(err)
	}
	backend := &countingRunner{inner: &sweep.PoolRunner{Workers: 4}}
	warm := newSuite()
	warm.Runner = sweep.NewCachedRunner(backend, sweep.WithDiskCache(warmDisk))
	var warmBuf bytes.Buffer
	if err := warm.WriteReport(&warmBuf); err != nil {
		t.Fatal(err)
	}

	if warmBuf.String() != coldBuf.String() {
		t.Fatal("warm report diverges from the cold report")
	}
	if n := backend.dispatched.Load(); n != 0 {
		t.Fatalf("warm run dispatched %d measurements to the backend, want 0", n)
	}
	st, ok := warm.CacheStats()
	if !ok || st.Misses != 0 || st.DiskHits != 36 || st.Hits != 123-36 {
		t.Fatalf("warm run counters: %+v, want 0 measured / 36 from disk / 87 memory hits", st)
	}
}

// TestPopulationReportByteIdenticalAcrossBackends pins the population
// tentpole end to end: a named scenario expanded into cohorts and swept
// over the pool, proc, and net backends — behind the memoizing cache, at
// different worker counts and shard sizes — must render the byte-identical
// population report.
func TestPopulationReportByteIdenticalAcrossBackends(t *testing.T) {
	cohorts, err := scenario.Generate("offload", scenario.Params{Users: 30, Frames: 6, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	opts := sweep.PopulationOptions{ShardUsers: 4}
	baseline, err := sweep.RunPopulation(context.Background(),
		&sweep.PoolRunner{Workers: 1}, cohorts, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Render()
	if !strings.Contains(want, "local-throttled") || !strings.Contains(want, "TOTAL") {
		t.Fatalf("population report incomplete:\n%s", want)
	}

	pr := &sweep.ProcRunner{Procs: 2}
	defer pr.Close()
	nr := &sweep.NetRunner{Nodes: startServeNodes(t, 2)}
	defer nr.Close()
	backends := []struct {
		name string
		r    sweep.Runner
	}{
		{"pool-8", &sweep.PoolRunner{Workers: 8}},
		{"proc", sweep.NewCachedRunner(pr)},
		{"net", sweep.NewCachedRunner(nr)},
	}
	for _, b := range backends {
		res, err := sweep.RunPopulation(context.Background(), b.r, cohorts, opts)
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		if got := res.Render(); got != want {
			t.Errorf("%s population report diverges:\n--- pool\n%s--- %s\n%s",
				b.name, want, b.name, got)
		}
	}
}

// TestPopulationCancelMidSweep checks the ctx-first session API end to
// end: canceling mid-population aborts in-flight shards instead of
// running the cohort to completion.
func TestPopulationCancelMidSweep(t *testing.T) {
	cohorts, err := scenario.Generate("multiplayer", scenario.Params{Users: 500000, Frames: 400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := sweep.RunPopulation(ctx, &sweep.PoolRunner{Workers: 2}, cohorts,
			sweep.PopulationOptions{ShardUsers: 100})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled population sweep must error")
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("population sweep ignored cancelation for %v", time.Since(start))
	}
}

// TestModelTracksHeldOutDeviceAcrossModes checks the paper's headline
// claim end to end: the fitted analytical model stays within a single-
// digit error band of the bench's ground truth on a held-out device, in
// both inference modes.
func TestModelTracksHeldOutDeviceAcrossModes(t *testing.T) {
	// Fit on one bench seed and measure ground truth on an independent
	// bench (same physics, fresh monitor noise) so the check cannot be
	// satisfied by shared noise.
	fw, _, err := core.NewFitted(21, 8000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	bench := testbed.NewBench(99)

	dev, err := device.ByName("XR4")
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []pipeline.InferenceMode{pipeline.ModeLocal, pipeline.ModeRemote} {
		var preds, gts []float64
		for _, size := range []float64{350, 500, 650} {
			for _, freq := range []float64{1, 1.5, 2} {
				sc, err := pipeline.NewScenario(dev,
					pipeline.WithMode(mode),
					pipeline.WithFrameSize(size),
					pipeline.WithCPUFreq(freq),
				)
				if err != nil {
					t.Fatal(err)
				}
				meas, err := bench.MeasureFrames(sc, 40)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := fw.Analyze(sc)
				if err != nil {
					t.Fatal(err)
				}
				preds = append(preds, rep.Latency.Total)
				gts = append(gts, meas.LatencyMs)
			}
		}
		mape, err := stats.MAPE(preds, gts)
		if err != nil {
			t.Fatal(err)
		}
		if mape > 12 {
			t.Fatalf("%v held-out latency error = %.1f%%, want < 12%%", mode, mape)
		}
	}
}

// TestAnalyticBufferMatchesDES validates the Eq. (7)/(22) M/M/1
// assumption end to end: the buffering delay the latency model charges
// equals the per-class sojourn the discrete-event simulator measures.
func TestAnalyticBufferMatchesDES(t *testing.T) {
	dev, err := device.ByName("XR1")
	if err != nil {
		t.Fatal(err)
	}
	s1, err := sensors.NewSensor("s", 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := pipeline.NewScenario(dev, pipeline.WithSensors(sensors.NewArray(s1), 1))
	if err != nil {
		t.Fatal(err)
	}
	mm1, err := queue.NewMM1(sc.BufferArrivalRatePerMs(), sc.BufferServiceRatePerMs)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := mm1.Simulate(150000, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(sim.MeanSojourn-mm1.MeanSojourn()) / mm1.MeanSojourn(); rel > 0.05 {
		t.Fatalf("DES sojourn %v vs analytic %v", sim.MeanSojourn, mm1.MeanSojourn())
	}

	fw := core.NewWithPaperCoefficients()
	rep, err := fw.Analyze(sc)
	if err != nil {
		t.Fatal(err)
	}
	wantBuffer := float64(sc.BufferClasses()) * mm1.MeanSojourn()
	if math.Abs(rep.Latency.Buffering-wantBuffer) > 1e-9 {
		t.Fatalf("model buffering %v vs analytic %v", rep.Latency.Buffering, wantBuffer)
	}
}

// TestSNRLinkDegradesRemotePipeline wires the Shannon link into the full
// pipeline: pushing the device away from the AP must monotonically raise
// remote-inference end-to-end latency.
func TestSNRLinkDegradesRemotePipeline(t *testing.T) {
	dev, err := device.ByName("XR6")
	if err != nil {
		t.Fatal(err)
	}
	fw := core.NewWithPaperCoefficients()
	radio := wireless.DefaultWiFi5SNR()
	prev := 0.0
	for _, d := range []float64{5, 50, 150, 400} {
		link, err := radio.LinkAt(d)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := pipeline.NewScenario(dev, pipeline.WithMode(pipeline.ModeRemote))
		if err != nil {
			t.Fatal(err)
		}
		sc.EdgeLink = link
		rep, err := fw.Analyze(sc)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Latency.Total <= prev {
			t.Fatalf("latency must grow with distance: %v at %v m", rep.Latency.Total, d)
		}
		prev = rep.Latency.Total
	}
}

// TestDropAwareAoIThroughFiniteBuffer couples the M/M/1/K buffer to the
// AoI model: shrinking the buffer must raise the drop-aware average AoI.
func TestDropAwareAoIThroughFiniteBuffer(t *testing.T) {
	s, err := sensors.NewSensor("s", 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := queue.NewMM1(0.4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := aoi.Config{Sensor: s, RequestFrequencyHz: 200, Buffer: buf}
	tight, err := queue.NewMM1K(0.9, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	roomy, err := queue.NewMM1K(0.9, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	aTight, err := cfg.AverageAoIWithDropsMs(4, tight)
	if err != nil {
		t.Fatal(err)
	}
	aRoomy, err := cfg.AverageAoIWithDropsMs(4, roomy)
	if err != nil {
		t.Fatal(err)
	}
	if aTight <= aRoomy {
		t.Fatalf("tight buffer AoI %v must exceed roomy %v", aTight, aRoomy)
	}
}
