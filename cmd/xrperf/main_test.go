package main

import (
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/testbed"
)

// startServeNodes runs n loopback worker-fleet nodes for the test's
// lifetime and returns the -nodes flag value addressing them.
func startServeNodes(t *testing.T, n int) string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = testbed.ServeListener(ctx, ln, nil)
		}()
		t.Cleanup(func() {
			cancel()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Error("serve node did not shut down")
			}
		})
		addrs[i] = ln.Addr().String()
	}
	return strings.Join(addrs, ",")
}

// TestMain lets the proc backend re-execute this test binary as a
// measurement worker: `-backend proc` spawns os.Executable(), which
// under `go test` is this binary, and the marker routes it into the
// worker loop instead of the tests.
func TestMain(m *testing.M) {
	testbed.MaybeServeWorker()
	os.Exit(m.Run())
}

// small dataset flags keep CLI tests fast.
var fastFlags = []string{"-train", "2000", "-test", "500", "-trials", "5"}

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

func TestNoArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("no args must error")
	}
	if err := run([]string{"bogus"}, &buf); err == nil {
		t.Fatal("unknown command must error")
	}
}

func TestHelp(t *testing.T) {
	out := runCLI(t, "help")
	for _, want := range []string{"devices", "experiment", "analyze"} {
		if !strings.Contains(out, want) {
			t.Fatalf("help missing %q", want)
		}
	}
}

func TestDevices(t *testing.T) {
	out := runCLI(t, "devices")
	for _, want := range []string{"XR1", "XR7", "Jetson AGX Xavier"} {
		if !strings.Contains(out, want) {
			t.Fatalf("devices output missing %q", want)
		}
	}
}

func TestCNNs(t *testing.T) {
	out := runCLI(t, "cnns")
	for _, want := range []string{"MobileNetv1_240_Float", "YOLOv7", "C_CNN"} {
		if !strings.Contains(out, want) {
			t.Fatalf("cnns output missing %q", want)
		}
	}
}

func TestFit(t *testing.T) {
	out := runCLI(t, append([]string{"fit"}, "-train", "2000", "-test", "500")...)
	for _, want := range []string{"Eq. 3", "Eq. 21", "paperR²"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fit output missing %q", want)
		}
	}
}

func TestExperimentRequiresID(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"experiment"}, &buf); err == nil {
		t.Fatal("missing id must error")
	}
	if err := run([]string{"experiment", "fig9x"}, &buf); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestExperimentFig4f(t *testing.T) {
	out := runCLI(t, append([]string{"experiment", "fig4f"}, fastFlags...)...)
	if !strings.Contains(out, "RoI") || !strings.Contains(out, "0.500") {
		t.Fatalf("fig4f output unexpected:\n%s", out)
	}
}

func TestExperimentFig4a(t *testing.T) {
	out := runCLI(t, append([]string{"experiment", "fig4a"}, fastFlags...)...)
	if !strings.Contains(out, "mean error") {
		t.Fatalf("fig4a output unexpected:\n%s", out)
	}
}

func TestAnalyzeLocalRemote(t *testing.T) {
	local := runCLI(t, "analyze", "-device", "XR6", "-mode", "local", "-size", "400")
	if !strings.Contains(local, "local inference") {
		t.Fatalf("local analyze missing segment:\n%s", local)
	}
	remote := runCLI(t, "analyze", "-device", "XR6", "-mode", "remote", "-size", "400")
	if !strings.Contains(remote, "remote inference") || !strings.Contains(remote, "transmission") {
		t.Fatalf("remote analyze missing segments:\n%s", remote)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"analyze", "-device", "XR99"}, &buf); err == nil {
		t.Fatal("unknown device must error")
	}
	if err := run([]string{"analyze", "-mode", "quantum"}, &buf); err == nil {
		t.Fatal("unknown mode must error")
	}
	if err := run([]string{"analyze", "-freq", "99"}, &buf); err == nil {
		t.Fatal("over-max frequency must error")
	}
}

func TestSweepGridTable(t *testing.T) {
	out := runCLI(t, append([]string{"sweep",
		"-devices", "XR1,XR6",
		"-modes", "local,remote",
		"-sizes", "400,600",
		"-freqs", "1,0",
		"-workers", "4",
	}, fastFlags...)...)
	if !strings.Contains(out, "16-point scenario grid") {
		t.Fatalf("sweep header unexpected:\n%s", out)
	}
	for _, want := range []string{"XR1/local", "XR6/remote", "mean error: latency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sweep output missing %q:\n%s", want, out)
		}
	}
	// Header + 16 rows + aggregate line.
	if lines := strings.Split(strings.TrimSpace(out), "\n"); len(lines) != 19 {
		t.Fatalf("sweep lines = %d, want 19:\n%s", len(lines), out)
	}
}

// TestSweepDeterministicAcrossWorkerCounts pins the engine contract at
// the CLI surface: one worker and many workers print identical tables.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	args := func(workers string) []string {
		return append([]string{"sweep",
			"-devices", "XR2", "-sizes", "300,700", "-freqs", "1,2",
			"-workers", workers,
		}, fastFlags...)
	}
	serial := runCLI(t, args("1")...)
	parallel := runCLI(t, args("8")...)
	if serial != parallel {
		t.Fatalf("worker count changed sweep output:\n--- serial\n%s\n--- parallel\n%s", serial, parallel)
	}
}

func TestSweepErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"sweep", "-devices", "XR99"}, &buf); err == nil {
		t.Fatal("unknown device must error")
	}
	if err := run([]string{"sweep", "-devices", ""}, &buf); err == nil {
		t.Fatal("empty device list must error")
	}
	if err := run([]string{"sweep", "-modes", "quantum"}, &buf); err == nil {
		t.Fatal("unknown mode must error")
	}
	if err := run([]string{"sweep", "-cnns", "NotANet"}, &buf); err == nil {
		t.Fatal("unknown cnn must error")
	}
	if err := run([]string{"sweep", "-sizes", "tall"}, &buf); err == nil {
		t.Fatal("non-numeric size must error")
	}
}

// TestReportStreamMatchesBuffered pins the two report modes against each
// other and across worker counts: -stream only changes when bytes are
// written, never which bytes, and -workers never changes the report.
func TestReportStreamMatchesBuffered(t *testing.T) {
	buffered := runCLI(t, append([]string{"report", "-workers", "1"}, fastFlags...)...)
	streamed := runCLI(t, append([]string{"report", "-stream", "-workers", "8"}, fastFlags...)...)
	if buffered != streamed {
		t.Fatalf("report -stream diverges from buffered report:\n--- buffered\n%s\n--- streamed\n%s",
			buffered, streamed)
	}
	for _, want := range []string{
		"# XR performance-analysis reproduction report",
		"## Table I", "## Fig. 5(b)", "## Verdict",
	} {
		if !strings.Contains(buffered, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

// TestReportBackendsIdentical pins the tentpole invariant at the CLI
// surface: `-backend pool`, `-backend proc`, and `-backend net` print
// byte-identical reports at any parallelism.
func TestReportBackendsIdentical(t *testing.T) {
	pool := runCLI(t, append([]string{"report", "-backend", "pool", "-workers", "2"}, fastFlags...)...)
	proc := runCLI(t, append([]string{"report", "-backend", "proc", "-procs", "2", "-workers", "2"}, fastFlags...)...)
	if pool != proc {
		t.Fatalf("-backend changed the report:\n--- pool\n%s\n--- proc\n%s", pool, proc)
	}
	netRep := runCLI(t, append([]string{"report", "-backend", "net", "-nodes", startServeNodes(t, 2), "-workers", "2"}, fastFlags...)...)
	if pool != netRep {
		t.Fatalf("-backend changed the report:\n--- pool\n%s\n--- net\n%s", pool, netRep)
	}
}

// TestSweepBackendsIdentical pins the same invariant for an arbitrary
// grid sweep.
func TestSweepBackendsIdentical(t *testing.T) {
	args := func(backend string, extra ...string) []string {
		a := append([]string{"sweep",
			"-devices", "XR2", "-sizes", "300,700", "-freqs", "1,2",
			"-backend", backend,
		}, extra...)
		return append(a, fastFlags...)
	}
	pool := runCLI(t, args("pool")...)
	if proc := runCLI(t, args("proc", "-procs", "2")...); pool != proc {
		t.Fatalf("-backend changed the sweep:\n--- pool\n%s\n--- proc\n%s", pool, proc)
	}
	if netOut := runCLI(t, args("net", "-nodes", startServeNodes(t, 1))...); pool != netOut {
		t.Fatalf("-backend changed the sweep:\n--- pool\n%s\n--- net\n%s", pool, netOut)
	}
}

func TestBackendErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"report", "-backend", "quantum"}, &buf); err == nil || !strings.Contains(err.Error(), "-backend") {
		t.Fatalf("unknown backend error = %v", err)
	}
	if err := run([]string{"report", "-backend", "net"}, &buf); err == nil || !strings.Contains(err.Error(), "-nodes") {
		t.Fatalf("net backend without nodes error = %v", err)
	}
}

// TestServeFlagErrors covers the serve subcommand's fail-fast paths; the
// serving loop itself is exercised through the net-backend tests, which
// run real loopback nodes.
func TestServeFlagErrors(t *testing.T) {
	if err := runServe([]string{"-listen", "not an address"}); err == nil || !strings.Contains(err.Error(), "serve") {
		t.Fatalf("bad listen address error = %v", err)
	}
	if err := runServe([]string{"-bogus"}); err == nil {
		t.Fatal("unknown serve flag must error")
	}
}

// TestSweepStreamMatchesBuffered pins the sweep streaming mode: -stream
// only changes when bytes are written, never which bytes.
func TestSweepStreamMatchesBuffered(t *testing.T) {
	args := func(extra ...string) []string {
		return append(append([]string{"sweep",
			"-devices", "XR1,XR6", "-sizes", "400,600", "-freqs", "0",
		}, extra...), fastFlags...)
	}
	buffered := runCLI(t, args()...)
	streamed := runCLI(t, args("-stream", "-workers", "8")...)
	if buffered != streamed {
		t.Fatalf("sweep -stream diverges from buffered output:\n--- buffered\n%s\n--- streamed\n%s",
			buffered, streamed)
	}
}

// TestSweepFormatCSV checks the machine-readable sweep output: schema
// header, one record per grid point, full-precision floats, and
// stream/buffered equality.
func TestSweepFormatCSV(t *testing.T) {
	args := func(extra ...string) []string {
		return append(append([]string{"sweep",
			"-devices", "XR1", "-modes", "local,remote", "-sizes", "400,600", "-freqs", "0",
			"-format", "csv",
		}, extra...), fastFlags...)
	}
	out := runCLI(t, args()...)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + 4 grid points
		t.Fatalf("csv lines = %d, want 5:\n%s", len(lines), out)
	}
	if lines[0] != "device,mode,cnn,size_px2,cpu_ghz,gt_latency_ms,model_latency_ms,latency_err_pct,gt_energy_mj,model_energy_mj,energy_err_pct" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "XR1,local,") {
		t.Fatalf("csv first record = %q", lines[1])
	}
	// Full precision: ground-truth values carry more digits than the
	// table's one-decimal rendering.
	if fields := strings.Split(lines[1], ","); len(fields) != 11 || !strings.Contains(fields[5], ".") || len(fields[5]) < 6 {
		t.Fatalf("csv record not full precision: %q", lines[1])
	}
	if streamed := runCLI(t, args("-stream")...); streamed != out {
		t.Fatalf("csv -stream diverges from buffered csv:\n--- buffered\n%s\n--- streamed\n%s", out, streamed)
	}
	var buf bytes.Buffer
	if err := run([]string{"sweep", "-format", "tsv"}, &buf); err == nil {
		t.Fatal("unknown format must error")
	}
}

// TestReportWarmCacheDir pins the persistent cache at the CLI surface:
// a second `report -cache-dir` run over the same directory prints
// byte-identical output, and the cache survives across backends — a
// warm proc-backend run reads the pool run's entries.
func TestReportWarmCacheDir(t *testing.T) {
	dir := t.TempDir()
	args := func(extra ...string) []string {
		return append(append([]string{"report", "-cache-dir", dir}, extra...), fastFlags...)
	}
	cold := runCLI(t, args()...)
	warm := runCLI(t, args()...)
	if cold != warm {
		t.Fatalf("warm -cache-dir report diverges from cold run:\n--- cold\n%s\n--- warm\n%s", cold, warm)
	}
	uncached := runCLI(t, append([]string{"report"}, fastFlags...)...)
	if warm != uncached {
		t.Fatal("-cache-dir changed the report bytes")
	}
	if proc := runCLI(t, args("-backend", "proc", "-procs", "2")...); proc != cold {
		t.Fatal("warm proc-backend report diverges from the pool run that filled the cache")
	}
	if netOut := runCLI(t, args("-backend", "net", "-nodes", startServeNodes(t, 1))...); netOut != cold {
		t.Fatal("warm net-backend report diverges from the pool run that filled the cache")
	}
}

// TestCacheDirSeparatesConfigurations checks that the cache key carries
// the full cell configuration: runs at different seeds share a
// directory without serving each other's measurements.
func TestCacheDirSeparatesConfigurations(t *testing.T) {
	dir := t.TempDir()
	args := func(seed string) []string {
		return append([]string{"experiment", "fig4a", "-cache-dir", dir, "-seed", seed}, fastFlags...)
	}
	a := runCLI(t, args("1")...)
	b := runCLI(t, args("2")...)
	if a == b {
		t.Fatal("different seeds printed one output; the shared cache dir leaked entries across configurations")
	}
	if again := runCLI(t, args("1")...); again != a {
		t.Fatal("warm seed-1 run diverges from its own cold run")
	}
}

// TestCacheDirUnusableDegrades pins the degradation rule: an unusable
// -cache-dir (here: a regular file) must warn and fall back to the
// in-memory cache, not fail the run or change its output.
func TestCacheDirUnusableDegrades(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	degraded := runCLI(t, append([]string{"experiment", "fig4a", "-cache-dir", file}, fastFlags...)...)
	plain := runCLI(t, append([]string{"experiment", "fig4a"}, fastFlags...)...)
	if degraded != plain {
		t.Fatal("degraded cache run diverges from the in-memory run")
	}
}

// TestWorkerSubcommandEOF checks that `xrperf worker` with an empty
// stdin (EOF immediately — go test wires /dev/null) writes exactly its
// handshake frame and exits cleanly.
func TestWorkerSubcommandEOF(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"worker"}, &buf); err != nil {
		t.Fatalf("worker at EOF: %v", err)
	}
	h, err := testbed.ReadHello(&buf)
	if err != nil {
		t.Fatalf("worker did not lead with a valid hello: %v", err)
	}
	if h != testbed.Hello() {
		t.Fatalf("worker hello = %+v", h)
	}
	if buf.Len() != 0 {
		t.Fatalf("worker wrote %d bytes beyond the handshake with no requests", buf.Len())
	}
}

// TestExperimentWorkersFlag pins the suite-level -workers flag on a
// single experiment: fig5a at 1 and 8 workers must print the same panel.
func TestExperimentWorkersFlag(t *testing.T) {
	args := func(workers string) []string {
		return append([]string{"experiment", "fig5a", "-workers", workers}, fastFlags...)
	}
	if serial, parallel := runCLI(t, args("1")...), runCLI(t, args("8")...); serial != parallel {
		t.Fatalf("-workers changed fig5a output:\n--- serial\n%s\n--- parallel\n%s", serial, parallel)
	}
}

func TestExportCSV(t *testing.T) {
	out := runCLI(t, "export", "-rows", "50")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 51 {
		t.Fatalf("export lines = %d, want 51 (header + 50)", len(lines))
	}
	if lines[0] != "fc_ghz,fg_ghz,cpu_share,resource" {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestExportKinds(t *testing.T) {
	for kind, header := range map[string]string{
		"resource": "fc_ghz,fg_ghz,cpu_share,resource",
		"power":    "fc_ghz,fg_ghz,cpu_share,power_w",
		"encoder":  "iframe,bframe,bitrate_mbps,frame_px2,fps,quant,work",
		"cnn":      "depth,size_mb,depth_scale,complexity",
	} {
		out := runCLI(t, "export", "-rows", "20", "-kind", kind)
		lines := strings.Split(strings.TrimSpace(out), "\n")
		if len(lines) != 21 {
			t.Fatalf("%s lines = %d", kind, len(lines))
		}
		if lines[0] != header {
			t.Fatalf("%s header = %q, want %q", kind, lines[0], header)
		}
	}
	var buf bytes.Buffer
	if err := run([]string{"export", "-kind", "bogus"}, &buf); err == nil {
		t.Fatal("unknown kind must error")
	}
	if err := run([]string{"export", "-rows", "0"}, &buf); err == nil {
		t.Fatal("zero rows must error")
	}
}

// TestPopulationRunsScenario checks the population subcommand end to
// end on the default backend: every cohort of the named scenario appears
// in the report along with the TOTAL row.
func TestPopulationRunsScenario(t *testing.T) {
	out := runCLI(t, "population", "-scenario", "offload", "-users", "12", "-frames", "5")
	for _, want := range []string{"cohort", "local", "local-throttled", "remote-congested", "TOTAL", "p99 ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("population report missing %q:\n%s", want, out)
		}
	}
}

// TestPopulationBackendsIdentical pins the tentpole acceptance criterion
// at the CLI surface: `xrperf population` prints the byte-identical
// report on the pool, proc, and net backends at any -workers value and
// shard size.
func TestPopulationBackendsIdentical(t *testing.T) {
	args := func(extra ...string) []string {
		return append([]string{"population",
			"-scenario", "vehicular", "-users", "10", "-frames", "4",
		}, extra...)
	}
	pool := runCLI(t, args("-backend", "pool", "-workers", "1")...)
	if !strings.Contains(pool, "highway-low") {
		t.Fatalf("vehicular report incomplete:\n%s", pool)
	}
	if again := runCLI(t, args("-backend", "pool", "-workers", "8", "-shard", "3")...); pool != again {
		t.Fatalf("workers/shard changed the report:\n--- 1 worker\n%s\n--- 8 workers\n%s", pool, again)
	}
	if proc := runCLI(t, args("-backend", "proc", "-procs", "2")...); pool != proc {
		t.Fatalf("-backend changed the report:\n--- pool\n%s\n--- proc\n%s", pool, proc)
	}
	if netOut := runCLI(t, args("-backend", "net", "-nodes", startServeNodes(t, 2))...); pool != netOut {
		t.Fatalf("-backend changed the report:\n--- pool\n%s\n--- net\n%s", pool, netOut)
	}
}

func TestPopulationErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"population", "-scenario", "bogus"}, &buf); err == nil {
		t.Fatal("unknown scenario must error")
	}
	if err := run([]string{"population", "-backend", "teleport"}, &buf); err == nil {
		t.Fatal("unknown backend must error")
	}
	if err := run([]string{"population", "-backend", "net"}, &buf); err == nil {
		t.Fatal("net backend without nodes must error")
	}
}
