// Command xrperf drives the XR performance-analysis framework: it dumps
// the Table I/II catalogs, re-fits the regression models on the synthetic
// testbed, runs any single paper experiment, or regenerates the full
// evaluation (every table and figure of Section VIII).
//
// Usage:
//
//	xrperf devices                      Table I device catalog
//	xrperf cnns                         Table II CNN catalog
//	xrperf fit [-train N] [-test N]     regression fits vs paper R²
//	xrperf experiment <id>              one experiment (fig4a…fig5b, table1…)
//	xrperf all                          every experiment in paper order
//	xrperf analyze [-mode local|remote] analyze one scenario
//	xrperf sweep [-devices ...]         run an arbitrary scenario grid in parallel
//	xrperf population [-scenario S]     simulate a population of XR sessions
//	xrperf export [-rows N]             dump a synthetic resource dataset as CSV
//	xrperf report [-stream]             regenerate the full Markdown evaluation report
//	xrperf worker                       serve measurement requests over stdin/stdout
//	xrperf serve -listen <addr>         run a worker-fleet node answering over TCP
//	xrperf server -listen <addr>        run a long-lived job server (sweep as a service)
//	xrperf submit [-addr <addr>]        submit one job to a server, print its output
//
// The experiment, all, sweep, report, and population subcommands share
// one serializable job specification (internal/job.Spec): the suite
// flags -seed/-train/-test/-trials/-workers plus the backend flags
// -backend pool|proc|net, -procs, -nodes, and -cache-dir; every output
// is byte-identical for any backend at any -workers/-procs/node count.
// The population subcommand expands a named scenario (vehicular,
// multiplayer, coverage, offload) into cohorts of simulated XR sessions
// — thermal throttling, battery drain, mobility handoffs — shards them
// into session requests, and folds the per-frame distributions into
// mergeable quantile sketches, so a million-user sweep holds kilobytes,
// not traces.
// The proc backend shards measurements across `xrperf worker`
// subprocesses speaking a length-delimited JSON protocol; the net
// backend dispatches the same protocol over TCP to `xrperf serve` nodes,
// rejecting nodes whose handshake reports a different protocol or
// physics version and re-dispatching shards away from crashed nodes.
// Fleet membership comes from exactly one source: -nodes host:port,...
// (static), -nodes-file FILE (reloaded on SIGHUP), or -fleet-register
// ADDR (a coordinator that `xrperf serve -register` nodes dial to join
// and leave by disconnecting). Membership may change mid-run — joiners
// are admitted, leavers drain — and dispatch is capacity-weighted, with
// idle nodes stealing queued batches from slow ones (-no-steal disables);
// none of it changes output bytes, because measurements are pure
// functions of (request, seed). Every backend runs under a memoizing measurement
// cache, whose counters are reported on stderr. -cache-dir persists
// measured cells on disk, so a warm re-run of the same configuration —
// by any backend, or a fleet of dispatchers sharing the directory —
// dispatches zero backend measurements and still prints the same bytes.
//
// The server subcommand turns the same machinery into sweep-as-a-service:
// a long-lived process accepting job documents (internal/job JSON) from
// concurrent submit clients over the frame protocol, executing them on
// one shared measurement cache — overlapping client grids measure each
// unique cell once globally — and streaming each job's canonical bytes
// back as ordered prefixes complete. Admission control is a bounded
// queue with busy rejection; `xrperf submit -stats` reports queue depth,
// cache counters, and observed λ/µ checked against the internal/queue
// M/M/1 model. For any job, `xrperf submit` and the equivalent one-shot
// subcommand print byte-identical output.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/cnn"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/job"
	"repro/internal/pipeline"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/sweep"
	"repro/internal/testbed"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xrperf:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return usageError()
	}
	switch args[0] {
	case "devices":
		return runDevices(out)
	case "cnns":
		return runCNNs(out)
	case "fit":
		return runFit(args[1:], out)
	case "experiment":
		return runExperiment(args[1:], out)
	case "all":
		return runAll(args[1:], out)
	case "analyze":
		return runAnalyze(args[1:], out)
	case "sweep":
		return runSweep(args[1:], out)
	case "population":
		return runPopulation(args[1:], out)
	case "export":
		return runExport(args[1:], out)
	case "report":
		return runReport(args[1:], out)
	case "worker":
		return runWorker(out)
	case "serve":
		return runServe(args[1:])
	case "server":
		return runServer(args[1:])
	case "submit":
		return runSubmit(args[1:], out)
	case "help", "-h", "--help":
		printUsage(out)
		return nil
	default:
		return usageError()
	}
}

func usageError() error {
	return fmt.Errorf("usage: xrperf {devices|cnns|fit|experiment <id>|all|analyze|sweep|population|export|report|worker|serve|server|submit} (ids: %s)",
		strings.Join(experiments.IDs(), ", "))
}

// runWorker serves the proc backend's wire protocol on stdin until EOF.
func runWorker(out io.Writer) error {
	return testbed.Serve(os.Stdin, out)
}

// runServe runs a worker-fleet node: accept dispatcher connections on
// -listen and answer measurement requests until SIGINT/SIGTERM. With
// -register the node also dials the named coordinator and registers its
// -advertise address (default: the bound listen address), joining an
// elastic fleet for as long as the registration connection lives. All
// operational output goes to stderr; stdout stays clean like every
// other subcommand's.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7600", "TCP address to accept dispatcher connections on")
	jsonOnly := fs.Bool("json-only", false, "advertise only the JSON codec (exercise mixed-fleet negotiation)")
	register := fs.String("register", "", "dial this coordinator (host:port) and register as a fleet member until shutdown")
	advertise := fs.String("advertise", "", "address to register with the coordinator (default: the bound -listen address)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *advertise != "" && *register == "" {
		return fmt.Errorf("serve: -advertise is only meaningful with -register")
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "xrperf serve: "+format+"\n", a...)
	}
	logf("listening on %s (protocol %d, physics %d)", ln.Addr(), testbed.ProtocolVersion, testbed.PhysicsVersion)
	// The registration handshake and the serve loop share one options
	// value so the hello frame dialed to the coordinator carries the same
	// capacity hints (cores, measured cells/s) dispatchers see.
	opts := testbed.ServeOptions{JSONOnly: *jsonOnly, Meter: &testbed.RateMeter{}}
	if *register != "" {
		adv := *advertise
		if adv == "" {
			adv = ln.Addr().String()
		}
		go func() {
			if err := fleet.RegisterLoop(ctx, *register, adv, opts.Hello, logf); err != nil && ctx.Err() == nil {
				logf("registration: %v", err)
			}
		}()
	}
	if err := testbed.ServeListenerOpts(ctx, ln, logf, opts); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	logf("shutting down")
	return nil
}

// runServer runs the long-lived job server: accept submit clients on
// -listen, execute their jobs on one shared cached runner (whatever
// backend the server's own -backend flags select), and stream each
// job's canonical output back. Operational output goes to stderr;
// client streams carry the job bytes only.
func runServer(args []string) error {
	fs := flag.NewFlagSet("server", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7700", "TCP address to accept submit clients on")
	maxActive := fs.Int("max-active", server.DefaultMaxActive, "maximum concurrently executing jobs")
	queueDepth := fs.Int("queue", server.DefaultQueueDepth, "admitted jobs that may wait beyond the active set; arrivals past it are rejected busy (-1 = no waiting room)")
	jobTimeout := fs.Duration("job-timeout", 0, "abort any job running longer than this (0 = no limit)")
	spec := job.Default()
	spec.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	runner, cleanup, err := spec.BuildRunner()
	if err != nil {
		return err
	}
	defer cleanup()
	logf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "xrperf server: "+format+"\n", a...)
	}
	srv, err := server.New(server.Config{
		Runner:     runner,
		MaxActive:  *maxActive,
		QueueDepth: *queueDepth,
		JobTimeout: *jobTimeout,
		Logf:       logf,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logf("listening on %s (job protocol %d, backend %s)", ln.Addr(), testbed.JobProtocolVersion, spec.Backend)
	if err := srv.Serve(ctx, ln); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	logf("shutting down")
	printStats(runner.Stats())
	return nil
}

// runSubmit sends one job to a running `xrperf server` and prints the
// streamed output — byte-identical to the equivalent one-shot
// subcommand. The job comes from -job FILE (a job JSON document, "-"
// for stdin) or is assembled from the same flags the one-shot
// subcommands take.
func runSubmit(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7700", "job server address")
	jobFile := fs.String("job", "", "job document (JSON) to submit; \"-\" reads stdin; empty builds the job from flags")
	kind := fs.String("kind", "sweep", "job kind when building from flags: sweep, report, or population")
	format := fs.String("format", "table", "sweep output format: table or csv")
	stats := fs.Bool("stats", false, "print the server's introspection snapshot (JSON) instead of submitting a job")
	gridOf := registerGridFlags(fs)
	pop := registerPopulationFlags(fs)
	spec := job.Default()
	spec.RegisterFlags(fs)
	spec.RegisterSuiteFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *stats {
		st, err := server.QueryStats(ctx, *addr)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}
	var jb job.Job
	switch {
	case *jobFile != "":
		data, err := readJobFile(*jobFile)
		if err != nil {
			return err
		}
		if jb, err = job.Decode(data); err != nil {
			return err
		}
	default:
		jb = job.Job{Kind: job.Kind(*kind), Spec: spec, Format: *format}
		switch jb.Kind {
		case job.KindSweep:
			grid, err := gridOf()
			if err != nil {
				return err
			}
			jb.Grid = &grid
		case job.KindPopulation:
			jb.Population = pop
		}
	}
	// Validate client-side first: a bad job fails here with the exact
	// one-shot CLI error text, without needing the server round trip.
	if err := jb.Validate(); err != nil {
		return err
	}
	return server.Submit(ctx, *addr, jb, out)
}

// readJobFile loads a job document from a path or stdin ("-").
func readJobFile(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func printUsage(out io.Writer) {
	fmt.Fprintln(out, "xrperf — XR performance-analysis framework (ICDCS 2024 reproduction)")
	fmt.Fprintln(out, "  devices                      Table I device catalog")
	fmt.Fprintln(out, "  cnns                         Table II CNN catalog")
	fmt.Fprintln(out, "  fit [-train N] [-test N]     fit regressions, report R² vs paper")
	fmt.Fprintln(out, "  experiment <id> [flags]      run one experiment:", strings.Join(experiments.IDs(), " "))
	fmt.Fprintln(out, "  all [flags]                  run every experiment in paper order")
	fmt.Fprintln(out, "  analyze [-device XRn] [-mode local|remote] [-size px2] [-freq GHz]")
	fmt.Fprintln(out, "  sweep [-devices XR1,..|all] [-modes local,remote] [-cnns M1,..]")
	fmt.Fprintln(out, "        [-sizes 300,500,..] [-freqs 1,2,..] [-workers N]")
	fmt.Fprintln(out, "        [-stream] [-format table|csv]")
	fmt.Fprintln(out, "                               run a scenario grid on the parallel sweep engine;")
	fmt.Fprintln(out, "                               -stream emits rows as grid prefixes complete")
	fmt.Fprintln(out, "  population [-scenario S] [-users N] [-frames N] [-shard N] [backend flags]")
	fmt.Fprintln(out, "                               simulate a population of XR sessions (thermal,")
	fmt.Fprintln(out, "                               battery, mobility) as cohorts on any backend;")
	fmt.Fprintln(out, "                               scenarios:", strings.Join(scenario.Names(), " "))
	fmt.Fprintln(out, "  export [-rows N] [-kind K]   dump a synthetic dataset as CSV")
	fmt.Fprintln(out, "  report [-stream] [flags]     regenerate the full Markdown evaluation report;")
	fmt.Fprintln(out, "                               -stream emits each section as soon as it completes")
	fmt.Fprintln(out, "  worker                       serve measurement requests over stdin/stdout")
	fmt.Fprintln(out, "                               (spawned by -backend proc; length-delimited JSON)")
	fmt.Fprintln(out, "  serve [-listen ADDR] [-json-only] [-register ADDR [-advertise ADDR]]")
	fmt.Fprintln(out, "                               run a worker-fleet node: answer measurement")
	fmt.Fprintln(out, "                               requests over TCP for -backend net dispatchers")
	fmt.Fprintln(out, "                               (handshake carries protocol + physics versions,")
	fmt.Fprintln(out, "                               capacity hints, and the codec advertisement;")
	fmt.Fprintln(out, "                               -json-only opts the node out of the binary codec;")
	fmt.Fprintln(out, "                               -register dials a -fleet-register coordinator and")
	fmt.Fprintln(out, "                               joins its fleet until shutdown)")
	fmt.Fprintln(out, "  server [-listen ADDR] [-max-active N] [-queue N] [-job-timeout D]")
	fmt.Fprintln(out, "         [backend flags]       run a long-lived job server: execute submitted")
	fmt.Fprintln(out, "                               jobs on one shared measurement cache (overlapping")
	fmt.Fprintln(out, "                               client grids measure each unique cell once) and")
	fmt.Fprintln(out, "                               stream canonical output back; bounded queue with")
	fmt.Fprintln(out, "                               busy rejection when full")
	fmt.Fprintln(out, "  submit [-addr ADDR] [-job FILE|-] [-kind sweep|report|population] [-stats]")
	fmt.Fprintln(out, "         [sweep/suite flags]   submit one job to a server and print the stream —")
	fmt.Fprintln(out, "                               byte-identical to the one-shot subcommand; -stats")
	fmt.Fprintln(out, "                               prints the server's queue/cache/λµ snapshot")
	fmt.Fprintln(out, "  Suite flags (experiment/all/sweep/report; population takes the backend")
	fmt.Fprintln(out, "                               subset): -seed N -train N -test N")
	fmt.Fprintln(out, "                               -trials N -workers N -backend pool|proc|net")
	fmt.Fprintln(out, "                               -procs N -nodes host:port,... -cache-dir DIR")
	fmt.Fprintln(out, "                               -batch N -pipeline N")
	fmt.Fprintln(out, "                               (0 = GOMAXPROCS; output is byte-identical for any")
	fmt.Fprintln(out, "                               backend at any parallelism; -cache-dir persists")
	fmt.Fprintln(out, "                               measurements so warm re-runs dispatch nothing;")
	fmt.Fprintln(out, "                               -batch/-pipeline tune the proc/net wire batching")
	fmt.Fprintln(out, "                               and window depth without changing output)")
	fmt.Fprintln(out, "  Fleet flags (-backend net; exactly one membership source):")
	fmt.Fprintln(out, "                               -nodes host:port,... (static inline fleet)")
	fmt.Fprintln(out, "                               -nodes-file FILE (one address per line, # comments,")
	fmt.Fprintln(out, "                               reloaded on SIGHUP) | -fleet-register ADDR (listen")
	fmt.Fprintln(out, "                               for `xrperf serve -register` nodes dialing home);")
	fmt.Fprintln(out, "                               -no-steal disables work stealing between nodes —")
	fmt.Fprintln(out, "                               membership and stealing never change output bytes")
}

func runDevices(out io.Writer) error {
	s := &experiments.Suite{}
	t1, err := s.Table1(context.Background())
	if err != nil {
		return err
	}
	fmt.Fprint(out, t1.Render())
	return nil
}

func runCNNs(out io.Writer) error {
	// The catalog needs a fitted complexity model; a small fit suffices.
	suite, err := experiments.NewSuite(1, 2000, 500)
	if err != nil {
		return err
	}
	t2, err := suite.Table2(context.Background())
	if err != nil {
		return err
	}
	fmt.Fprint(out, t2.Render())
	return nil
}

// buildSuite parses the shared job flags and assembles the suite with its
// measurement backend via the serializable job.Spec; cleanup reaps
// backend resources (the proc backend's worker subprocesses) and must run
// after the command's last measurement.
func buildSuite(fs *flag.FlagSet, args []string) (suite *experiments.Suite, cleanup func(), err error) {
	spec := job.Default()
	spec.RegisterFlags(fs)
	spec.RegisterSuiteFlags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, nil, err
	}
	return spec.BuildSuite()
}

// printCacheStats reports the measurement cache's counters on stderr —
// never stdout, which stays byte-identical across backends and
// parallelism.
func printCacheStats(suite *experiments.Suite) {
	if st, ok := suite.CacheStats(); ok {
		printStats(st)
	}
}

func printStats(st sweep.CacheStats) {
	if st.Misses+st.Hits+st.DiskHits == 0 {
		return
	}
	line := fmt.Sprintf("xrperf: measurement cache: %d unique cells measured, %d served from cache",
		st.Misses, st.Hits+st.DiskHits)
	if st.DiskHits > 0 {
		line += fmt.Sprintf(" (%d loaded from disk)", st.DiskHits)
	}
	fmt.Fprintln(os.Stderr, line)
}

// runPopulation expands a named scenario into cohorts of simulated users
// and sweeps their sessions on the selected backend, reporting merged
// latency/energy distributions per cohort. Stdout carries only the report
// — byte-identical for any backend, worker count, or shard size — so CI
// can diff backends directly. The flags assemble a population job
// document, the exact structure `xrperf submit -kind population` ships
// to a server, and both render through job.Run — so the two front doors
// cannot drift.
func runPopulation(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("population", flag.ContinueOnError)
	pop := registerPopulationFlags(fs)
	spec := job.Default()
	spec.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	jb := job.Job{Kind: job.KindPopulation, Spec: spec, Population: pop}
	if err := jb.Validate(); err != nil {
		return err
	}
	runner, cleanup, err := spec.BuildRunner()
	if err != nil {
		return err
	}
	defer cleanup()
	suite, err := jb.SuiteFor(runner)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := jb.Run(ctx, suite, out); err != nil {
		return err
	}
	printStats(runner.Stats())
	return nil
}

// registerPopulationFlags registers the population workload flags on fs,
// bound to the returned value — the same structure a submit client ships
// to a server.
func registerPopulationFlags(fs *flag.FlagSet) *job.Population {
	pop := &job.Population{}
	fs.StringVar(&pop.Scenario, "scenario", "vehicular", "scenario generator: "+strings.Join(scenario.Names(), ", "))
	fs.IntVar(&pop.Users, "users", 10000, "total simulated users, split across the scenario's cohorts")
	fs.IntVar(&pop.Frames, "frames", 120, "frames per user session")
	fs.IntVar(&pop.Shard, "shard", sweep.DefaultShardUsers, "sessions per request shard (output identical for any value)")
	return pop
}

func runFit(args []string, out io.Writer) error {
	// fit registers only the flags it uses: it neither measures
	// (-trials) nor sweeps (-workers), and silently accepting them would
	// suggest otherwise.
	fs := flag.NewFlagSet("fit", flag.ContinueOnError)
	paper := fs.Bool("paper-scale", false, "use the paper's 119,465/36,083 dataset sizes")
	seed := fs.Int64("seed", 42, "bench RNG seed")
	train := fs.Int("train", experiments.DefaultTrainRows, "training dataset rows")
	test := fs.Int("test", experiments.DefaultTestRows, "test dataset rows")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, te := *train, *test
	if *paper {
		tr, te = testbed.PaperTrainRows, testbed.PaperTestRows
	}
	suite, err := experiments.NewSuite(*seed, tr, te)
	if err != nil {
		return err
	}
	res, err := suite.FitSummary(context.Background())
	if err != nil {
		return err
	}
	fmt.Fprint(out, res.Render())
	return nil
}

func runExperiment(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("experiment id required (one of: %s)", strings.Join(experiments.IDs(), ", "))
	}
	id := args[0]
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	suite, cleanup, err := buildSuite(fs, args[1:])
	if err != nil {
		return err
	}
	defer cleanup()
	res, err := suite.Run(id)
	if err != nil {
		return err
	}
	fmt.Fprint(out, res.Render())
	printCacheStats(suite)
	return nil
}

func runAll(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("all", flag.ContinueOnError)
	suite, cleanup, err := buildSuite(fs, args)
	if err != nil {
		return err
	}
	defer cleanup()
	results, err := suite.RunAll()
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Fprintln(out, r.Render())
	}
	printCacheStats(suite)
	return nil
}

func runReport(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	stream := fs.Bool("stream", false, "write each section as soon as it completes instead of buffering the whole report")
	spec := job.Default()
	spec.RegisterFlags(fs)
	spec.RegisterSuiteFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	jb := job.Job{Kind: job.KindReport, Spec: spec, Stream: *stream}
	suite, cleanup, err := spec.BuildSuite()
	if err != nil {
		return err
	}
	defer cleanup()
	defer printCacheStats(suite)
	return jb.Run(context.Background(), suite, out)
}

func runAnalyze(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	devName := fs.String("device", "XR1", "device name from Table I")
	mode := fs.String("mode", "local", "inference mode: local or remote")
	size := fs.Float64("size", 500, "frame size (pixel² unit, 300-700)")
	freq := fs.Float64("freq", 0, "CPU frequency in GHz (0 = device max)")
	fitted := fs.Bool("fitted", false, "use re-fitted models instead of paper coefficients")
	if err := fs.Parse(args); err != nil {
		return err
	}

	dev, err := device.ByName(*devName)
	if err != nil {
		return err
	}
	var m pipeline.InferenceMode
	switch *mode {
	case "local":
		m = pipeline.ModeLocal
	case "remote":
		m = pipeline.ModeRemote
	default:
		return fmt.Errorf("unknown mode %q (local or remote)", *mode)
	}
	opts := []pipeline.Option{pipeline.WithMode(m), pipeline.WithFrameSize(*size)}
	if *freq > 0 {
		opts = append(opts, pipeline.WithCPUFreq(*freq))
	}
	sc, err := pipeline.NewScenario(dev, opts...)
	if err != nil {
		return err
	}

	fw := core.NewWithPaperCoefficients()
	if *fitted {
		fw, _, err = core.NewFitted(42, experiments.DefaultTrainRows, experiments.DefaultTestRows)
		if err != nil {
			return err
		}
	}
	rep, err := fw.Analyze(sc)
	if err != nil {
		return err
	}
	fmt.Fprint(out, rep.Render())
	return nil
}

// registerGridFlags registers the sweep grid flags on fs and returns a
// builder that translates their parsed values into the serializable
// job.Grid — the same structure a submit client ships to a server.
func registerGridFlags(fs *flag.FlagSet) func() (job.Grid, error) {
	devices := fs.String("devices", "XR1", "comma-separated Table I devices, or \"all\"")
	modes := fs.String("modes", "local,remote", "comma-separated inference modes")
	cnns := fs.String("cnns", "", "comma-separated Table II CNNs (empty = pipeline defaults)")
	sizes := fs.String("sizes", "300,400,500,600,700", "comma-separated frame sizes (pixel² unit)")
	freqs := fs.String("freqs", "0", "comma-separated CPU clocks in GHz (0 = device max, clamped)")
	return func() (job.Grid, error) {
		return job.ParseGrid(*devices, *modes, *cnns, *sizes, *freqs)
	}
}

func runSweep(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	gridOf := registerGridFlags(fs)
	stream := fs.Bool("stream", false, "write each grid row as soon as its prefix completes instead of buffering the table")
	format := fs.String("format", "table", "output format: table or csv")
	spec := job.Default()
	spec.RegisterFlags(fs)
	spec.RegisterSuiteFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	grid, err := gridOf()
	if err != nil {
		return err
	}
	jb := job.Job{Kind: job.KindSweep, Spec: spec, Grid: &grid, Format: *format, Stream: *stream}
	if err := jb.Validate(); err != nil {
		return err
	}
	suite, cleanup, err := spec.BuildSuite()
	if err != nil {
		return err
	}
	defer cleanup()
	defer printCacheStats(suite)
	return jb.Run(context.Background(), suite, out)
}

func runExport(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	rows := fs.Int("rows", 1000, "rows to export")
	seed := fs.Int64("seed", 42, "bench RNG seed")
	kind := fs.String("kind", "resource", "dataset kind: resource, power, encoder, or cnn")
	if err := fs.Parse(args); err != nil {
		return err
	}
	bench := testbed.NewBench(*seed)
	tbl, err := exportTable(bench, *kind, *rows)
	if err != nil {
		return err
	}
	return tbl.WriteCSV(out)
}

// exportTable materializes one synthetic measurement dataset of the given
// kind, matching the feature layouts the regressions are fitted on.
func exportTable(bench *testbed.Bench, kind string, rows int) (*dataset.Table, error) {
	if rows <= 0 {
		return nil, fmt.Errorf("rows must be positive, have %d", rows)
	}
	devs := device.TrainDevices()
	switch kind {
	case "resource", "power":
		target := "resource"
		measure := bench.Physics.TrueResource
		if kind == "power" {
			target = "power_w"
			measure = bench.Physics.TruePower
		}
		tbl, err := dataset.New("fc_ghz", "fg_ghz", "cpu_share", target)
		if err != nil {
			return nil, err
		}
		for i := 0; i < rows; i++ {
			d := devs[i%len(devs)]
			fc := 0.8 + (d.CPUGHz-0.8)*float64(i%97)/97
			fg := 0.4 + (d.GPUGHz-0.4)*float64(i%89)/89
			wc := float64(i%101) / 101
			v, err := measure(d.Name, fc, fg, wc)
			if err != nil {
				return nil, err
			}
			if err := tbl.Append(fc, fg, wc, v); err != nil {
				return nil, err
			}
		}
		return tbl, nil
	case "encoder":
		tbl, err := dataset.New("iframe", "bframe", "bitrate_mbps",
			"frame_px2", "fps", "quant", "work")
		if err != nil {
			return nil, err
		}
		for i := 0; i < rows; i++ {
			p := codec.EncodingParams{
				IFrameInterval: 10 + float64(i%50),
				BFrameInterval: float64(i % 5),
				BitrateMbps:    1 + float64(i%9),
				FrameSizePx2:   300 + float64(i%400),
				FPS:            15 + float64(i%45),
				Quantization:   10 + float64(i%35),
			}
			w, err := bench.Physics.TrueEncoderWork(p)
			if err != nil {
				return nil, err
			}
			if err := tbl.Append(p.IFrameInterval, p.BFrameInterval,
				p.BitrateMbps, p.FrameSizePx2, p.FPS, p.Quantization, w); err != nil {
				return nil, err
			}
		}
		return tbl, nil
	case "cnn":
		tbl, err := dataset.New("depth", "size_mb", "depth_scale", "complexity")
		if err != nil {
			return nil, err
		}
		catalog := cnn.Catalog()
		for i := 0; i < rows; i++ {
			m := catalog[i%len(catalog)]
			c, err := bench.Physics.TrueCNNComplexity(m.Depth, m.SizeMB, m.DepthScale)
			if err != nil {
				return nil, err
			}
			if err := tbl.Append(float64(m.Depth), m.SizeMB, m.DepthScale, c); err != nil {
				return nil, err
			}
		}
		return tbl, nil
	default:
		return nil, fmt.Errorf("unknown dataset kind %q (resource, power, encoder, cnn)", kind)
	}
}
