package main

import (
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/sweep"
)

// startJobServer runs an in-process job server on the pool backend for
// the test's lifetime and returns its address. The CLI-facing pieces —
// the submit subcommand, flag parsing, error texts — still go through
// run(); only the server loop is hosted in-process (the CI fleet job
// exercises the real `xrperf server` binary end to end).
func startJobServer(t *testing.T) string {
	t.Helper()
	runner := sweep.NewCachedRunner(&sweep.PoolRunner{Workers: 2})
	srv, err := server.New(server.Config{Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ctx, ln)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("job server did not shut down")
		}
	})
	return ln.Addr().String()
}

// TestSubmitMatchesOneShotCLI pins the tentpole contract at the CLI
// layer: `xrperf submit` with the same flags prints byte-identically to
// the one-shot subcommand, for table and CSV sweeps and the report.
func TestSubmitMatchesOneShotCLI(t *testing.T) {
	addr := startJobServer(t)
	cases := [][]string{
		{"-devices", "XR1", "-sizes", "300,500"},
		{"-devices", "XR1", "-sizes", "300,500", "-format", "csv"},
	}
	for _, grid := range cases {
		oneShot := runCLI(t, append(append([]string{"sweep"}, grid...), fastFlags...)...)
		submitted := runCLI(t, append(append([]string{"submit", "-addr", addr}, grid...), fastFlags...)...)
		if submitted != oneShot {
			t.Fatalf("submit %v diverges from one-shot sweep:\nsubmit %q\nsweep  %q", grid, submitted, oneShot)
		}
	}
	oneShot := runCLI(t, append([]string{"report"}, fastFlags...)...)
	submitted := runCLI(t, append([]string{"submit", "-addr", addr, "-kind", "report"}, fastFlags...)...)
	if submitted != oneShot {
		t.Fatal("submit -kind report diverges from one-shot report")
	}
}

// TestSubmitJobFile pins the jobs-as-data path: a job document read from
// a file (and from stdin via "-") submits and prints the same bytes as
// the flag-built equivalent.
func TestSubmitJobFile(t *testing.T) {
	addr := startJobServer(t)
	doc := `{
		"kind": "sweep",
		"spec": {"seed": 42, "train_rows": 2000, "test_rows": 500, "trials": 5},
		"grid": {"devices": ["XR1"], "modes": ["local", "remote"], "sizes": [300, 500]},
		"format": "csv"
	}`
	file := filepath.Join(t.TempDir(), "job.json")
	if err := os.WriteFile(file, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	fromFile := runCLI(t, "submit", "-addr", addr, "-job", file)
	fromFlags := runCLI(t, append([]string{"submit", "-addr", addr,
		"-devices", "XR1", "-sizes", "300,500", "-format", "csv"}, fastFlags...)...)
	if fromFile != fromFlags {
		t.Fatalf("-job file diverges from flags:\nfile  %q\nflags %q", fromFile, fromFlags)
	}
	if !strings.Contains(fromFile, "device,") {
		t.Fatalf("unexpected CSV output: %q", fromFile)
	}
}

// TestSubmitErrorParity pins satellite 4 at the CLI layer: for the same
// invalid spec, `xrperf submit` and the one-shot subcommand fail with
// exactly the same error text.
func TestSubmitErrorParity(t *testing.T) {
	addr := startJobServer(t)
	cases := [][]string{
		{"-backend", "teleport"},
		{"-backend", "net"}, // net without nodes
		{"-nodes", "x:1"},   // nodes without net
		{"-workers", "-1"},
		{"-trials", "-3"},
		{"-format", "xml"},
		{"-modes", "sideways"},
		{"-sizes", "tall"},
	}
	var sink bytes.Buffer
	for _, extra := range cases {
		oneShotErr := run(append([]string{"sweep"}, extra...), &sink)
		submitErr := run(append([]string{"submit", "-addr", addr}, extra...), &sink)
		if oneShotErr == nil || submitErr == nil {
			t.Fatalf("%v: expected both doors to reject (sweep=%v submit=%v)", extra, oneShotErr, submitErr)
		}
		if oneShotErr.Error() != submitErr.Error() {
			t.Fatalf("%v: error text diverges between doors:\nsweep  %q\nsubmit %q", extra, oneShotErr, submitErr)
		}
	}
}

// TestSubmitStats checks the introspection op end to end through the
// CLI: the snapshot is valid JSON carrying the queue and cache counters.
func TestSubmitStats(t *testing.T) {
	addr := startJobServer(t)
	runCLI(t, append([]string{"submit", "-addr", addr, "-devices", "XR1", "-sizes", "300"}, fastFlags...)...)
	out := runCLI(t, "submit", "-addr", addr, "-stats")
	for _, want := range []string{`"arrivals": 1`, `"completed": 1`, `"cache"`, `"lambda_per_ms"`, `"predicted_sojourn_ms"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
}

// TestSubmitToFleetNode pins the clear-error path when a submit client
// dials an `xrperf serve` measurement node instead of a job server.
func TestSubmitToFleetNode(t *testing.T) {
	nodeAddr := startServeNodes(t, 1)
	var sink bytes.Buffer
	err := run([]string{"submit", "-addr", nodeAddr, "-devices", "XR1", "-sizes", "300"}, &sink)
	if err == nil || !strings.Contains(err.Error(), "not a job server") {
		t.Fatalf("want a not-a-job-server error, got %v", err)
	}
}

// TestServerFlagErrors checks the server subcommand rejects bad
// configuration with the shared spec error texts.
func TestServerFlagErrors(t *testing.T) {
	var sink bytes.Buffer
	if err := run([]string{"server", "-backend", "teleport"}, &sink); err == nil ||
		!strings.Contains(err.Error(), "-backend") {
		t.Fatalf("bad backend: %v", err)
	}
	if err := run([]string{"server", "-backend", "net"}, &sink); err == nil ||
		!strings.Contains(err.Error(), "-nodes") {
		t.Fatalf("net without nodes: %v", err)
	}
	if err := run([]string{"server", "-listen", "not an address"}, &sink); err == nil {
		t.Fatal("unusable listen address must error")
	}
}

// TestReportByteIdenticalUnderChaos pins the chaos satellite at the
// report level: the full Markdown report generated over a net fleet
// whose first node dies repeatedly mid-stream (every connection killed
// three frames in) is byte-identical to the pool backend's.
func TestReportByteIdenticalUnderChaos(t *testing.T) {
	want := runCLI(t, append([]string{"report", "-workers", "2"}, fastFlags...)...)
	proxy, err := sweep.NewChaosProxy(startServeNodes(t, 1), sweep.ChaosConfig{
		CrashAfterFrames: 3,
		MaxCrashes:       -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	nodes := proxy.Addr() + "," + startServeNodes(t, 1)
	got := runCLI(t, append([]string{"report", "-backend", "net", "-nodes", nodes, "-workers", "2"}, fastFlags...)...)
	if got != want {
		t.Fatal("report bytes diverge under injected node death")
	}
	if proxy.Crashes() == 0 {
		t.Fatal("chaos proxy injected no crashes; the test exercised nothing")
	}
}
