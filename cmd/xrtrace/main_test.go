package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

func TestSummaryOutput(t *testing.T) {
	out := runCLI(t, "-frames", "20", "-device", "XR1")
	for _, want := range []string{"session: 20/20", "mean latency", "total energy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestThermalAndBatterySummary(t *testing.T) {
	out := runCLI(t, "-frames", "30", "-thermal", "-battery", "3640")
	if !strings.Contains(out, "thermal:") || !strings.Contains(out, "battery:") {
		t.Fatalf("missing thermal/battery lines:\n%s", out)
	}
}

func TestMobilitySummary(t *testing.T) {
	out := runCLI(t, "-frames", "20", "-mode", "remote", "-mobility")
	if !strings.Contains(out, "mobility:") {
		t.Fatalf("missing mobility line:\n%s", out)
	}
}

func TestCSVTrace(t *testing.T) {
	out := runCLI(t, "-frames", "10", "-csv")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 11 {
		t.Fatalf("csv lines = %d, want 11", len(lines))
	}
	if !strings.HasPrefix(lines[0], "frame,latency_ms,energy_mj") {
		t.Fatalf("csv header = %q", lines[0])
	}
}

func TestErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-device", "XR99"}, &buf); err == nil {
		t.Fatal("unknown device must error")
	}
	if err := run([]string{"-mode", "psychic"}, &buf); err == nil {
		t.Fatal("unknown mode must error")
	}
	if err := run([]string{"-frames", "0"}, &buf); err == nil {
		t.Fatal("zero frames must error")
	}
	if err := run([]string{"-battery", "-5"}, &buf); err == nil {
		// Negative battery is disabled (0) semantics? No: flag parses,
		// value < 0 skips the battery block, so the run succeeds — treat
		// as no error expected.
		t.Log("negative battery treated as disabled")
	}
}
