// Command xrtrace runs a multi-frame XR session through the analytical
// framework — with optional thermal throttling, battery drain, and
// mobility — and emits either a frame-indexed CSV trace or a summary.
//
// Usage:
//
//	xrtrace -frames 600 -device XR6 -mode local -thermal -battery 3640
//	xrtrace -frames 300 -mode remote -mobility -csv > trace.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/mobility"
	"repro/internal/pipeline"
	"repro/internal/session"
	"repro/internal/wireless"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xrtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("xrtrace", flag.ContinueOnError)
	devName := fs.String("device", "XR6", "device name from Table I")
	mode := fs.String("mode", "local", "inference mode: local or remote")
	size := fs.Float64("size", 500, "frame size (pixel² unit)")
	frames := fs.Int("frames", 300, "session length in frames")
	thermal := fs.Bool("thermal", false, "enable thermal throttling")
	batteryMAh := fs.Float64("battery", 0, "battery capacity in mAh (0 disables)")
	mobile := fs.Bool("mobility", false, "enable random-walk mobility with vertical handoffs")
	csvOut := fs.Bool("csv", false, "emit the full CSV trace instead of a summary")
	seed := fs.Int64("seed", 42, "RNG seed")
	fitted := fs.Bool("fitted", false, "use re-fitted models instead of paper coefficients")
	if err := fs.Parse(args); err != nil {
		return err
	}

	dev, err := device.ByName(*devName)
	if err != nil {
		return err
	}
	var m pipeline.InferenceMode
	switch *mode {
	case "local":
		m = pipeline.ModeLocal
	case "remote":
		m = pipeline.ModeRemote
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	sc, err := pipeline.NewScenario(dev,
		pipeline.WithMode(m),
		pipeline.WithFrameSize(*size),
	)
	if err != nil {
		return err
	}

	fw := core.NewWithPaperCoefficients()
	if *fitted {
		fw, _, err = core.NewFitted(*seed, 20000, 6000)
		if err != nil {
			return err
		}
	}

	cfg := session.Config{
		Framework: fw,
		Scenario:  sc,
		Frames:    *frames,
		Seed:      *seed,
	}
	if *thermal {
		th := session.DefaultThermal()
		cfg.Thermal = &th
	}
	if *batteryMAh > 0 {
		b, err := session.NewBattery(*batteryMAh, 3.85)
		if err != nil {
			return err
		}
		cfg.Battery = &b
	}
	if *mobile {
		walk, err := mobility.NewWalk(1.4, 50) // walking pace
		if err != nil {
			return err
		}
		cfg.Walk = &walk
		cfg.Zone = mobility.Zone{Technology: wireless.WiFi5GHz, RadiusM: 40}
		cfg.HandoffKind = mobility.HandoffVertical
	}

	res, err := session.Run(cfg)
	if err != nil {
		return err
	}

	if *csvOut {
		tbl, err := res.TraceTable()
		if err != nil {
			return err
		}
		return tbl.WriteCSV(out)
	}

	fmt.Fprintf(out, "session: %d/%d frames on %s (%s, %s inference)\n",
		res.CompletedFrames, *frames, dev.Name, dev.Model, *mode)
	fmt.Fprintf(out, "  mean latency:   %.1f ms/frame\n", res.MeanLatencyMs)
	fmt.Fprintf(out, "  total energy:   %.1f mJ (%.1f mJ/frame)\n",
		res.TotalEnergyMJ, res.TotalEnergyMJ/float64(res.CompletedFrames))
	if cfg.Thermal != nil {
		last := res.Trace[len(res.Trace)-1]
		fmt.Fprintf(out, "  thermal:        %d throttled frames, final %.1f °C at %.2f GHz\n",
			res.ThrottledFrames, last.TempC, last.CPUFreqGHz)
	}
	if cfg.Battery != nil {
		last := res.Trace[len(res.Trace)-1]
		fmt.Fprintf(out, "  battery:        %.1f%% remaining", 100*last.BatterySoC)
		if res.Depleted {
			fmt.Fprintf(out, " (DEPLETED at frame %d)", res.CompletedFrames)
		} else if life, err := res.BatteryLifeFrames(*cfg.Battery); err == nil {
			mins := float64(life) * res.MeanLatencyMs / 60000
			fmt.Fprintf(out, " (≈%d frames ≈ %.0f min of use per charge)", life, mins)
		}
		fmt.Fprintln(out)
	}
	if cfg.Walk != nil {
		last := res.Trace[len(res.Trace)-1]
		fmt.Fprintf(out, "  mobility:       P(HO) ≈ %.3f per %d-frame window\n",
			last.HandoffProb, 30)
	}
	return nil
}
