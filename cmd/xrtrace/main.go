// Command xrtrace runs a multi-frame XR session through the analytical
// framework — with optional thermal throttling, battery drain, and
// mobility — and emits either a frame-indexed CSV trace or a summary.
//
// It is a thin client of the testbed's session workload: the flags build
// one serializable testbed.OpSession request — exactly what a population
// sweep dispatches to its backends — and render the returned summary and
// trace. The CLI and the sweep path therefore cannot drift: they execute
// the same request through the same executor.
//
// Usage:
//
//	xrtrace -frames 600 -device XR6 -mode local -thermal -battery 3640
//	xrtrace -frames 300 -mode remote -mobility -csv > trace.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/device"
	"repro/internal/mobility"
	"repro/internal/pipeline"
	"repro/internal/session"
	"repro/internal/testbed"
	"repro/internal/wireless"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xrtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("xrtrace", flag.ContinueOnError)
	devName := fs.String("device", "XR6", "device name from Table I")
	mode := fs.String("mode", "local", "inference mode: local or remote")
	size := fs.Float64("size", 500, "frame size (pixel² unit)")
	frames := fs.Int("frames", 300, "session length in frames")
	thermal := fs.Bool("thermal", false, "enable thermal throttling")
	batteryMAh := fs.Float64("battery", 0, "battery capacity in mAh (0 disables)")
	mobile := fs.Bool("mobility", false, "enable random-walk mobility with vertical handoffs")
	csvOut := fs.Bool("csv", false, "emit the full CSV trace instead of a summary")
	seed := fs.Int64("seed", 42, "RNG seed")
	fitted := fs.Bool("fitted", false, "use re-fitted models instead of paper coefficients")
	if err := fs.Parse(args); err != nil {
		return err
	}

	dev, err := device.ByName(*devName)
	if err != nil {
		return err
	}
	var m pipeline.InferenceMode
	switch *mode {
	case "local":
		m = pipeline.ModeLocal
	case "remote":
		m = pipeline.ModeRemote
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	sc, err := pipeline.NewScenario(dev,
		pipeline.WithMode(m),
		pipeline.WithFrameSize(*size),
	)
	if err != nil {
		return err
	}

	// One serializable session request — the same unit of work a
	// population sweep ships to its backends.
	req := testbed.Request{
		Op:       testbed.OpSession,
		Scenario: sc,
		Seed:     *seed,
		Session: &testbed.SessionConfig{
			Frames:       *frames,
			IncludeTrace: true,
		},
	}
	if *fitted {
		req.Fit = &testbed.FitConfig{Seed: *seed, TrainRows: 20000, TestRows: 6000}
	}
	if *thermal {
		th := session.DefaultThermal()
		req.Session.Thermal = &th
	}
	if *batteryMAh > 0 {
		req.Session.BatteryMAh = *batteryMAh
	}
	if *mobile {
		req.Session.Mobility = &testbed.MobilityConfig{
			SpeedMps:       1.4, // walking pace
			StepMs:         50,
			ZoneTechnology: wireless.WiFi5GHz,
			ZoneRadiusM:    40,
			Kind:           mobility.HandoffVertical,
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	meas, err := testbed.NewExecutor(nil).DoContext(ctx, req)
	if err != nil {
		return err
	}
	sum := meas.Session
	if sum == nil || len(sum.Trace) == 0 {
		return fmt.Errorf("session returned no trace")
	}

	if *csvOut {
		tbl, err := session.TraceTable(sum.Trace)
		if err != nil {
			return err
		}
		return tbl.WriteCSV(out)
	}

	last := sum.Trace[len(sum.Trace)-1]
	fmt.Fprintf(out, "session: %d/%d frames on %s (%s, %s inference)\n",
		sum.Frames, *frames, dev.Name, dev.Model, *mode)
	fmt.Fprintf(out, "  mean latency:   %.1f ms/frame\n", meas.LatencyMs)
	fmt.Fprintf(out, "  total energy:   %.1f mJ (%.1f mJ/frame)\n",
		sum.TotalEnergyMJ, sum.TotalEnergyMJ/float64(sum.Frames))
	if req.Session.Thermal != nil {
		fmt.Fprintf(out, "  thermal:        %d throttled frames, final %.1f °C at %.2f GHz\n",
			sum.ThrottledFrames, last.TempC, last.CPUFreqGHz)
	}
	if req.Session.BatteryMAh > 0 {
		fmt.Fprintf(out, "  battery:        %.1f%% remaining", 100*last.BatterySoC)
		if sum.Depleted > 0 {
			fmt.Fprintf(out, " (DEPLETED at frame %d)", sum.Frames)
		} else if b, err := session.NewBattery(req.Session.BatteryMAh, 3.85); err == nil && sum.TotalEnergyMJ > 0 {
			life := int(b.CapacityMJ / (sum.TotalEnergyMJ / float64(sum.Frames)))
			mins := float64(life) * meas.LatencyMs / 60000
			fmt.Fprintf(out, " (≈%d frames ≈ %.0f min of use per charge)", life, mins)
		}
		fmt.Fprintln(out)
	}
	if req.Session.Mobility != nil {
		fmt.Fprintf(out, "  mobility:       P(HO) ≈ %.3f per %d-frame window\n",
			last.HandoffProb, 30)
	}
	return nil
}
