// Command xrlint runs the repository's custom analyzer suite
// (internal/lint) over the named packages, in the spirit of a
// golang.org/x/tools multichecker but with zero dependencies.
//
// Usage:
//
//	xrlint [-list] [packages]
//
// Packages default to ./... and accept go-list patterns. Diagnostics
// print one per line as
//
//	path/file.go:line:col: [analyzer] message
//
// and the exit status is 1 when any diagnostic survives its
// //xrlint:allow review (see internal/lint for the directive syntax).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the suite from the current directory, returning the
// process exit code: 0 clean, 1 diagnostics, 2 operational failure.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xrlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers in the suite and exit")
	dir := fs.String("C", ".", "directory to resolve package patterns from")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: xrlint [-list] [-C dir] [packages]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%s: %s\n\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "xrlint: %v\n", err)
		return 2
	}
	diags := lint.RunAnalyzers(pkgs, analyzers)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "xrlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
