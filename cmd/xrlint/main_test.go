package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway single-package module and returns
// its directory.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tiny\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "tiny.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunFlagsViolation(t *testing.T) {
	dir := writeModule(t, `package tiny

import "context"

// Bad takes its context second.
func Bad(name string, ctx context.Context) error {
	_ = name
	return ctx.Err()
}
`)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "[ctxfirst]") {
		t.Errorf("diagnostic listing missing ctxfirst finding:\n%s", stdout.String())
	}
}

func TestRunCleanPackage(t *testing.T) {
	dir := writeModule(t, `package tiny

import "context"

// Good takes its context first.
func Good(ctx context.Context, name string) error {
	_ = name
	return ctx.Err()
}
`)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit code = %d, want 0", code)
	}
	for _, name := range []string{"determinism:", "ctxfirst:", "lockhygiene:", "wiresafe:"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

func TestRunBadDirectory(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", t.TempDir(), "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code for empty non-module dir = %d, want 2", code)
	}
}
